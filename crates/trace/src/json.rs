//! Hand-rolled JSON support for the trace layer: an object writer for the
//! event stream and a minimal parser for round-tripping emitted lines.
//!
//! The workspace builds fully offline, so no serde. The writer covers
//! exactly what the event schema needs (string, integer and float fields
//! in one flat object); the parser covers full JSON values so tests can
//! assert "every emitted line parses" without external crates.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escape a string for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Incremental writer for one flat JSON object (one event line).
#[derive(Debug)]
pub struct JsonObject {
    buf: String,
    first: bool,
}

impl JsonObject {
    pub fn new() -> Self {
        Self {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        let _ = write!(self.buf, "\"{}\":", escape(key));
    }

    pub fn str(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        let _ = write!(self.buf, "\"{}\"", escape(value));
        self
    }

    pub fn u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    pub fn usize(&mut self, key: &str, value: usize) -> &mut Self {
        self.u64(key, value as u64)
    }

    pub fn f64(&mut self, key: &str, value: f64) -> &mut Self {
        self.key(key);
        // Finite decimal rendering; NaN/inf have no JSON form.
        if value.is_finite() {
            let _ = write!(self.buf, "{value:.3}");
        } else {
            self.buf.push_str("null");
        }
        self
    }

    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for JsonObject {
    fn default() -> Self {
        Self::new()
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Field lookup on an object value.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(map) => map.get(key),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parse one complete JSON value; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing input at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos).map(JsonValue::Str),
        Some(b't') => parse_lit(b, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", JsonValue::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(JsonValue::Num)
        .map_err(|e| format!("bad number `{text}`: {e}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        // Surrogate pairs are not emitted by the writer;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte safe).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            other => return Err(format!("expected , or ] in array, got {other:?}")),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    *pos += 1; // '{'
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected : at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(map));
            }
            other => return Err(format!("expected , or }} in object, got {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_output_parses_back() {
        let mut obj = JsonObject::new();
        obj.str("event", "activation")
            .str("dep", "e\"quote\\slash\n")
            .u64("sweep", 3)
            .u64("wall_us", 12345)
            .f64("rate", 0.5);
        let line = obj.finish();
        let v = parse(&line).unwrap();
        assert_eq!(
            v.get("event").and_then(JsonValue::as_str),
            Some("activation")
        );
        assert_eq!(
            v.get("dep").and_then(JsonValue::as_str),
            Some("e\"quote\\slash\n")
        );
        assert_eq!(v.get("sweep").and_then(JsonValue::as_u64), Some(3));
        assert_eq!(v.get("rate").and_then(JsonValue::as_f64), Some(0.5));
    }

    #[test]
    fn parser_covers_nested_values() {
        let v = parse(r#"{"a": [1, 2.5, -3], "b": {"c": true, "d": null}, "e": "x"}"#).unwrap();
        assert_eq!(
            v.get("a"),
            Some(&JsonValue::Arr(vec![
                JsonValue::Num(1.0),
                JsonValue::Num(2.5),
                JsonValue::Num(-3.0)
            ]))
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&JsonValue::Null));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("{}").unwrap(), JsonValue::Obj(BTreeMap::new()));
        assert_eq!(parse("[]").unwrap(), JsonValue::Arr(Vec::new()));
    }
}
