//! Trace sinks: where the event stream goes.
//!
//! The chase configuration carries a [`TraceHandle`] — a clonable,
//! optionally-empty handle to a shared [`TraceSink`]. With no sink
//! attached every emit is a branch on a `None`, so tracing support costs
//! nothing on the hot path; profiling (the [`crate::Recorder`]
//! aggregation) stays on either way.

use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// A line-oriented event consumer. Implementations must be safe to share
/// across the chase's worker threads; the engine only hands over complete
/// event lines (no partial writes).
pub trait TraceSink: Send + Sync {
    /// Consume one complete event line (without a trailing newline).
    fn emit(&self, line: &str);
    /// Flush any buffering; called once at the end of a run.
    fn flush(&self) {}
}

/// A clonable handle to an optional shared sink. The default handle is
/// empty — every emit is a no-op.
#[derive(Clone, Default)]
pub struct TraceHandle(Option<Arc<dyn TraceSink>>);

impl TraceHandle {
    /// The no-op handle (same as `TraceHandle::default()`).
    pub fn none() -> Self {
        Self(None)
    }

    /// A handle over a shared sink.
    pub fn new(sink: Arc<dyn TraceSink>) -> Self {
        Self(Some(sink))
    }

    /// Is a sink attached? Event assembly can be skipped entirely when not.
    pub fn is_active(&self) -> bool {
        self.0.is_some()
    }

    /// Forward one event line to the sink, if any.
    pub fn emit(&self, line: &str) {
        if let Some(sink) = &self.0 {
            sink.emit(line);
        }
    }

    /// Flush the sink, if any.
    pub fn flush(&self) {
        if let Some(sink) = &self.0 {
            sink.flush();
        }
    }
}

// `Debug` cannot be derived over `dyn TraceSink`; render attachment only.
impl fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("TraceHandle")
            .field(&if self.0.is_some() { "sink" } else { "none" })
            .finish()
    }
}

/// Streams events to a file as JSON Lines (one event object per line).
///
/// Writes are buffered; the buffer is flushed on [`TraceSink::flush`] and
/// on drop, so a completed run always leaves a well-formed file.
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Create (truncate) `path` and stream events into it.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        Ok(Self {
            writer: Mutex::new(BufWriter::new(File::create(path)?)),
        })
    }
}

impl TraceSink for JsonlSink {
    fn emit(&self, line: &str) {
        let mut w = self.writer.lock().expect("trace writer poisoned");
        let _ = writeln!(w, "{line}");
    }

    fn flush(&self) {
        let _ = self.writer.lock().expect("trace writer poisoned").flush();
    }
}

impl fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JsonlSink").finish_non_exhaustive()
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        if let Ok(mut w) = self.writer.lock() {
            let _ = w.flush();
        }
    }
}

/// Buffers events in memory; the test-side sink.
#[derive(Debug, Default)]
pub struct MemorySink {
    lines: Mutex<Vec<String>>,
}

impl MemorySink {
    pub fn new() -> Self {
        Self::default()
    }

    /// A snapshot of everything emitted so far.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().expect("memory sink poisoned").clone()
    }
}

impl TraceSink for MemorySink {
    fn emit(&self, line: &str) {
        self.lines
            .lock()
            .expect("memory sink poisoned")
            .push(line.to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_handle_is_inert() {
        let h = TraceHandle::none();
        assert!(!h.is_active());
        h.emit("dropped");
        h.flush();
        assert_eq!(format!("{h:?}"), "TraceHandle(\"none\")");
    }

    #[test]
    fn memory_sink_collects_in_order() {
        let sink = Arc::new(MemorySink::new());
        let h = TraceHandle::new(sink.clone());
        assert!(h.is_active());
        h.emit("one");
        let h2 = h.clone();
        h2.emit("two");
        assert_eq!(sink.lines(), vec!["one".to_string(), "two".to_string()]);
        assert_eq!(format!("{h:?}"), "TraceHandle(\"sink\")");
    }

    #[test]
    fn jsonl_sink_writes_lines() {
        let dir = std::env::temp_dir().join("grom_trace_sink_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.jsonl");
        {
            let sink = JsonlSink::create(&path).unwrap();
            sink.emit("{\"a\":1}");
            sink.emit("{\"b\":2}");
            sink.flush();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "{\"a\":1}\n{\"b\":2}\n");
        std::fs::remove_dir_all(&dir).ok();
    }
}
