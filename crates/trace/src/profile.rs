//! The aggregated per-run profile: what the chase hands back alongside its
//! `ChaseStats` counters.
//!
//! Where `ChaseStats` answers "how much work did the run do", a
//! [`ChaseProfile`] answers "*where* did it go": per-dependency wall time
//! and activation splits ([`DepProfile`]), per-phase sweep timings
//! (evaluate / barrier merge / null substitution), and per-conflict-group
//! utilization in parallel mode ([`GroupProfile`]).
//!
//! All counter fields are deterministic functions of the scenario and the
//! scheduler mode — identical across thread counts and thread schedules.
//! Only the `*_ns` wall-clock fields (and [`GroupProfile::busy_ns`]) vary
//! run to run.

/// Per-dependency profile totals.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DepProfile {
    /// Dependency name, as declared.
    pub name: String,
    /// Total activations (full rescans + delta activations).
    pub activations: u64,
    /// Activations that evaluated the premise against the full instance.
    pub full_rescans: u64,
    /// Activations seeded from delta tuples.
    pub delta_activations: u64,
    /// Delta activations that found at least one violation — the numerator
    /// of the delta-hit rate.
    pub delta_hits: u64,
    /// Delta tuples used to seed premise evaluation. Each claimed tuple
    /// counts once per activation, however many anchor positions its
    /// relation has in the premise — the semi-naive old/new split
    /// evaluates all anchors in one pass over the claimed delta.
    pub delta_tuples_seeded: u64,
    /// Violating premise matches found (before the satisfied-recheck).
    /// True match counts: the semi-naive split enumerates each match
    /// exactly once across anchor positions, so nothing is filtered out
    /// between enumeration and this counter.
    pub violations: u64,
    /// Tuples this dependency's repairs actually inserted.
    pub tuples_produced: u64,
    /// Equality obligations this dependency recorded.
    pub obligations: u64,
    /// Insert attempts rejected as duplicates (parallel mode: the shard
    /// view's two-layer dedup; always 0 in sequential modes).
    pub dedup_hits: u64,
    /// Wall time spent in this dependency's activations.
    pub wall_ns: u64,
    /// Conflict group index in parallel mode.
    pub group: Option<usize>,
}

impl DepProfile {
    /// Fraction of delta activations that found work, if any ran.
    pub fn delta_hit_rate(&self) -> Option<f64> {
        (self.delta_activations > 0).then(|| self.delta_hits as f64 / self.delta_activations as f64)
    }
}

/// Per-conflict-group utilization (parallel mode only).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GroupProfile {
    /// Group index from the conflict partition.
    pub group: usize,
    /// Worker jobs this group contributed across all sweeps.
    pub jobs: u64,
    /// Wall time workers spent running this group's jobs.
    pub busy_ns: u64,
}

/// The whole-run profile.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChaseProfile {
    /// Scheduler mode label (`delta`, `full_rescan`, `parallelN`, …).
    pub mode: String,
    /// One entry per dependency, in declaration order.
    pub deps: Vec<DepProfile>,
    /// Sweeps that did any work (activations or substitutions).
    pub sweeps: u64,
    /// Wall time in the evaluate phase: activation time in sequential
    /// modes, pool wall time (barrier to barrier) in parallel mode.
    pub evaluate_ns: u64,
    /// Wall time in the parallel barrier merge (obligation unification,
    /// buffer absorption, delta routing); 0 in sequential modes.
    pub merge_ns: u64,
    /// Wall time in null-substitution passes.
    pub substitute_ns: u64,
    /// Substitution passes applied (mirrors
    /// `ChaseStats::substitution_passes` for the profiled run).
    pub substitution_passes: u64,
    /// Per-group utilization, sorted by group index; empty in sequential
    /// modes.
    pub groups: Vec<GroupProfile>,
    /// Wall time of the whole chase run.
    pub total_ns: u64,
}

impl ChaseProfile {
    /// Total activations across all dependencies.
    pub fn total_activations(&self) -> u64 {
        self.deps.iter().map(|d| d.activations).sum()
    }

    /// Total full rescans across all dependencies.
    pub fn total_full_rescans(&self) -> u64 {
        self.deps.iter().map(|d| d.full_rescans).sum()
    }

    /// Total delta activations across all dependencies.
    pub fn total_delta_activations(&self) -> u64 {
        self.deps.iter().map(|d| d.delta_activations).sum()
    }

    /// Total delta tuples seeded across all dependencies.
    pub fn total_delta_tuples_seeded(&self) -> u64 {
        self.deps.iter().map(|d| d.delta_tuples_seeded).sum()
    }

    /// Total tuples produced across all dependencies.
    pub fn total_tuples_produced(&self) -> u64 {
        self.deps.iter().map(|d| d.tuples_produced).sum()
    }

    /// Total equality obligations recorded across all dependencies.
    pub fn total_obligations(&self) -> u64 {
        self.deps.iter().map(|d| d.obligations).sum()
    }

    /// Aggregate delta-hit rate, if any delta activations ran.
    pub fn delta_hit_rate(&self) -> Option<f64> {
        let acts = self.total_delta_activations();
        (acts > 0).then(|| self.deps.iter().map(|d| d.delta_hits).sum::<u64>() as f64 / acts as f64)
    }

    /// Wall time of dependency activations (the sequential evaluate sum).
    pub fn total_dep_wall_ns(&self) -> u64 {
        self.deps.iter().map(|d| d.wall_ns).sum()
    }

    /// Fold another run's profile into this one (greedy scenario retries,
    /// exhaustive node closures). Dependencies are merged **by name** —
    /// scenario-derived dependency sets can differ run to run — and groups
    /// by index. An empty profile adopts the other's mode label.
    pub fn absorb(&mut self, other: &ChaseProfile) {
        if self.mode.is_empty() {
            self.mode = other.mode.clone();
        }
        for od in &other.deps {
            let slot = match self.deps.iter_mut().find(|d| d.name == od.name) {
                Some(d) => d,
                None => {
                    self.deps.push(DepProfile {
                        name: od.name.clone(),
                        ..Default::default()
                    });
                    self.deps.last_mut().expect("just pushed")
                }
            };
            slot.activations += od.activations;
            slot.full_rescans += od.full_rescans;
            slot.delta_activations += od.delta_activations;
            slot.delta_hits += od.delta_hits;
            slot.delta_tuples_seeded += od.delta_tuples_seeded;
            slot.violations += od.violations;
            slot.tuples_produced += od.tuples_produced;
            slot.obligations += od.obligations;
            slot.dedup_hits += od.dedup_hits;
            slot.wall_ns += od.wall_ns;
            if slot.group.is_none() {
                slot.group = od.group;
            }
        }
        for og in &other.groups {
            let slot = match self.groups.iter_mut().find(|g| g.group == og.group) {
                Some(g) => g,
                None => {
                    self.groups.push(GroupProfile {
                        group: og.group,
                        ..Default::default()
                    });
                    self.groups.sort_by_key(|g| g.group);
                    self.groups
                        .iter_mut()
                        .find(|g| g.group == og.group)
                        .expect("just pushed")
                }
            };
            slot.jobs += og.jobs;
            slot.busy_ns += og.busy_ns;
        }
        self.sweeps += other.sweeps;
        self.evaluate_ns += other.evaluate_ns;
        self.merge_ns += other.merge_ns;
        self.substitute_ns += other.substitute_ns;
        self.substitution_passes += other.substitution_passes;
        self.total_ns += other.total_ns;
    }

    /// A copy with every wall-clock field zeroed — the thread-count- and
    /// machine-independent remainder, for determinism assertions.
    pub fn counters_only(&self) -> ChaseProfile {
        let mut p = self.clone();
        p.evaluate_ns = 0;
        p.merge_ns = 0;
        p.substitute_ns = 0;
        p.total_ns = 0;
        for d in &mut p.deps {
            d.wall_ns = 0;
        }
        for g in &mut p.groups {
            g.busy_ns = 0;
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dep(name: &str, activations: u64, tuples: u64) -> DepProfile {
        DepProfile {
            name: name.into(),
            activations,
            tuples_produced: tuples,
            wall_ns: 100,
            ..Default::default()
        }
    }

    #[test]
    fn absorb_merges_by_name_and_adopts_mode() {
        let mut a = ChaseProfile::default();
        let mut b = ChaseProfile {
            mode: "delta".into(),
            deps: vec![dep("t1", 2, 5), dep("t2", 1, 0)],
            sweeps: 3,
            ..Default::default()
        };
        b.groups.push(GroupProfile {
            group: 0,
            jobs: 2,
            busy_ns: 50,
        });
        a.absorb(&b);
        a.absorb(&b);
        assert_eq!(a.mode, "delta");
        assert_eq!(a.deps.len(), 2);
        assert_eq!(a.deps[0].activations, 4);
        assert_eq!(a.total_tuples_produced(), 10);
        assert_eq!(a.sweeps, 6);
        assert_eq!(a.groups[0].jobs, 4);
    }

    #[test]
    fn delta_hit_rate_handles_empty() {
        let mut d = DepProfile::default();
        assert_eq!(d.delta_hit_rate(), None);
        d.delta_activations = 4;
        d.delta_hits = 3;
        assert_eq!(d.delta_hit_rate(), Some(0.75));
        let p = ChaseProfile {
            deps: vec![d],
            ..Default::default()
        };
        assert_eq!(p.delta_hit_rate(), Some(0.75));
    }

    #[test]
    fn counters_only_zeroes_every_wall_field() {
        let p = ChaseProfile {
            mode: "parallel4".into(),
            deps: vec![dep("t", 1, 1)],
            evaluate_ns: 10,
            merge_ns: 20,
            substitute_ns: 30,
            total_ns: 40,
            groups: vec![GroupProfile {
                group: 1,
                jobs: 1,
                busy_ns: 99,
            }],
            ..Default::default()
        };
        let c = p.counters_only();
        assert_eq!(c.evaluate_ns + c.merge_ns + c.substitute_ns + c.total_ns, 0);
        assert_eq!(c.deps[0].wall_ns, 0);
        assert_eq!(c.groups[0].busy_ns, 0);
        assert_eq!(c.deps[0].activations, 1);
        assert_eq!(c.groups[0].jobs, 1);
    }
}
