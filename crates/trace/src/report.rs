//! The dominance-report renderer behind `grom explain`.
//!
//! Takes a finished [`ChaseProfile`] and renders a plain-text report:
//! where the wall time went per dependency (with full/delta splits and
//! delta-hit rates), how the sweep phases break down, how busy each
//! conflict group kept the pool in parallel mode, and a rewrite hint when
//! a single group (or, sequentially, a single dependency) holds more than
//! 80% of the work.

use std::fmt::Write as _;

use crate::profile::ChaseProfile;

/// Share of the work above which the report suggests a rewrite.
const DOMINANCE_THRESHOLD: f64 = 0.8;

/// Rendering knobs for [`render_report`].
#[derive(Debug, Clone)]
pub struct ReportOptions {
    /// How many dependencies to list (by wall time).
    pub top: usize,
}

impl Default for ReportOptions {
    fn default() -> Self {
        Self { top: 10 }
    }
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

/// Render the dominance report for a finished profile.
pub fn render_report(profile: &ChaseProfile, opts: &ReportOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "chase profile: mode={} sweeps={} total={:.2}ms",
        profile.mode,
        profile.sweeps,
        ms(profile.total_ns)
    );

    // --- Per-dependency dominance, by wall time. ---
    let dep_wall = profile.total_dep_wall_ns();
    let mut order: Vec<usize> = (0..profile.deps.len()).collect();
    order.sort_by(|&a, &b| {
        profile.deps[b]
            .wall_ns
            .cmp(&profile.deps[a].wall_ns)
            .then_with(|| profile.deps[a].name.cmp(&profile.deps[b].name))
    });
    let shown = order.len().min(opts.top.max(1));
    let _ = writeln!(
        out,
        "top {shown} of {} dependencies by time:",
        profile.deps.len()
    );
    for &i in order.iter().take(shown) {
        let d = &profile.deps[i];
        let hit = match d.delta_hit_rate() {
            Some(r) => format!("{:.0}%", 100.0 * r),
            None => "-".to_string(),
        };
        let group = match d.group {
            Some(g) => format!(" group={g}"),
            None => String::new(),
        };
        let _ = writeln!(
            out,
            "  {:<24} {:>8.2}ms {:>5.1}%  acts={} (full={} delta={})  tuples={} hit={hit}{group}",
            d.name,
            ms(d.wall_ns),
            pct(d.wall_ns, dep_wall),
            d.activations,
            d.full_rescans,
            d.delta_activations,
            d.tuples_produced,
        );
    }

    // --- Phase accounting. ---
    let _ = writeln!(
        out,
        "phases: evaluate={:.2}ms merge={:.2}ms substitute={:.2}ms ({} passes)",
        ms(profile.evaluate_ns),
        ms(profile.merge_ns),
        ms(profile.substitute_ns),
        profile.substitution_passes
    );
    if let Some(rate) = profile.delta_hit_rate() {
        let _ = writeln!(
            out,
            "delta: activations={} seeded={} hit-rate={:.0}%",
            profile.total_delta_activations(),
            profile.total_delta_tuples_seeded(),
            100.0 * rate
        );
    }

    // --- Per-group utilization (parallel mode only). ---
    let group_busy: u64 = profile.groups.iter().map(|g| g.busy_ns).sum();
    if !profile.groups.is_empty() {
        let _ = writeln!(out, "parallel groups ({}):", profile.groups.len());
        for g in &profile.groups {
            let _ = writeln!(
                out,
                "  group {:<3} jobs={:<5} busy={:>8.2}ms {:>5.1}% of busy work",
                g.group,
                g.jobs,
                ms(g.busy_ns),
                pct(g.busy_ns, group_busy)
            );
        }
    }

    // --- Rewrite hint: one group (or one dependency) dominates. ---
    if !profile.groups.is_empty() {
        if let Some(top) = profile
            .groups
            .iter()
            .max_by_key(|g| (g.busy_ns, std::cmp::Reverse(g.group)))
        {
            if group_busy > 0 && top.busy_ns as f64 > DOMINANCE_THRESHOLD * group_busy as f64 {
                let members: Vec<&str> = profile
                    .deps
                    .iter()
                    .filter(|d| d.group == Some(top.group))
                    .map(|d| d.name.as_str())
                    .collect();
                let _ = writeln!(
                    out,
                    "hint: group {} holds {:.0}% of the parallel work ({}); \
                     splitting its dependencies (or rewriting them to touch \
                     disjoint relations) would unlock more parallelism",
                    top.group,
                    pct(top.busy_ns, group_busy),
                    members.join(", ")
                );
            }
        }
    } else if let Some(top) = order.first().map(|&i| &profile.deps[i]) {
        if dep_wall > 0 && top.wall_ns as f64 > DOMINANCE_THRESHOLD * dep_wall as f64 {
            let _ = writeln!(
                out,
                "hint: dependency {} holds {:.0}% of the chase work; consider \
                 splitting its premise or adding join keys to narrow its \
                 activations",
                top.name,
                pct(top.wall_ns, dep_wall)
            );
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{DepProfile, GroupProfile};

    fn dep(name: &str, wall_ns: u64) -> DepProfile {
        DepProfile {
            name: name.into(),
            activations: 2,
            full_rescans: 1,
            delta_activations: 1,
            delta_hits: 1,
            tuples_produced: 3,
            wall_ns,
            ..Default::default()
        }
    }

    #[test]
    fn report_lists_deps_by_wall_time() {
        let p = ChaseProfile {
            mode: "delta".into(),
            deps: vec![dep("small", 1_000_000), dep("big", 9_000_000)],
            sweeps: 2,
            evaluate_ns: 10_000_000,
            total_ns: 11_000_000,
            ..Default::default()
        };
        let r = render_report(&p, &ReportOptions::default());
        let big = r.find("big").unwrap();
        let small = r.find("small").unwrap();
        assert!(big < small, "big should be listed first:\n{r}");
        assert!(r.contains("mode=delta"));
        assert!(r.contains("hit=100%"));
        // 9/10 of the dep wall > 80% → sequential dominance hint fires.
        assert!(r.contains("hint: dependency big holds 90%"), "{r}");
    }

    #[test]
    fn top_n_truncates() {
        let deps: Vec<DepProfile> = (0..8).map(|i| dep(&format!("d{i}"), 1_000)).collect();
        let p = ChaseProfile {
            mode: "delta".into(),
            deps,
            ..Default::default()
        };
        let r = render_report(&p, &ReportOptions { top: 3 });
        assert!(r.contains("top 3 of 8 dependencies"));
        assert_eq!(r.matches("acts=").count(), 3);
    }

    #[test]
    fn group_dominance_hint_fires_above_threshold() {
        let mut d0 = dep("hot_a", 5_000_000);
        d0.group = Some(1);
        let mut d1 = dep("hot_b", 4_000_000);
        d1.group = Some(1);
        let mut d2 = dep("cold", 1_000_000);
        d2.group = Some(0);
        let p = ChaseProfile {
            mode: "parallel4".into(),
            deps: vec![d0, d1, d2],
            groups: vec![
                GroupProfile {
                    group: 0,
                    jobs: 2,
                    busy_ns: 1_000_000,
                },
                GroupProfile {
                    group: 1,
                    jobs: 2,
                    busy_ns: 9_000_000,
                },
            ],
            ..Default::default()
        };
        let r = render_report(&p, &ReportOptions::default());
        assert!(r.contains("parallel groups (2)"));
        assert!(r.contains("hint: group 1 holds 90%"), "{r}");
        assert!(r.contains("hot_a, hot_b"), "{r}");
    }

    #[test]
    fn balanced_groups_get_no_hint() {
        let p = ChaseProfile {
            mode: "parallel2".into(),
            deps: vec![dep("a", 1), dep("b", 1)],
            groups: vec![
                GroupProfile {
                    group: 0,
                    jobs: 1,
                    busy_ns: 500,
                },
                GroupProfile {
                    group: 1,
                    jobs: 1,
                    busy_ns: 500,
                },
            ],
            ..Default::default()
        };
        let r = render_report(&p, &ReportOptions::default());
        assert!(!r.contains("hint:"), "{r}");
    }
}
