//! The unified error type of the relational substrate.
//!
//! One enum — [`GromError`] — covers schema construction, data insertion,
//! and the fact-file reader. Variants carry *source context* (the relation
//! involved and, where known, the 1-based line number of the offending fact
//! file) so CLI exit paths can print actionable messages without threading
//! extra state. The historical names [`DataError`] and `ReadError` (in
//! [`crate::io`]) survive as type aliases, so older call sites and pattern
//! matches keep compiling unchanged.

use std::fmt;
use std::sync::Arc;

use crate::schema::ColumnType;
use crate::value::Value;

/// Errors raised when building schemas, inserting data, or reading fact
/// files.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GromError {
    /// A relation name was declared twice in the same schema.
    DuplicateRelation { relation: Arc<str> },
    /// A column name was declared twice in the same relation.
    DuplicateColumn { relation: Arc<str>, column: String },
    /// A fact refers to a relation the schema does not declare.
    UnknownRelation { relation: Arc<str> },
    /// A fact has the wrong number of values for its relation.
    ArityMismatch {
        relation: Arc<str>,
        expected: usize,
        actual: usize,
    },
    /// A value does not conform to the declared column type.
    TypeMismatch {
        relation: Arc<str>,
        column: String,
        expected: ColumnType,
        actual: Value,
    },
    /// A line of a fact file could not be parsed.
    Syntax { line: usize, message: String },
    /// Any error, annotated with the 1-based source line it arose at.
    /// Produced by [`GromError::at_line`]; the reader wraps schema/data
    /// errors this way so messages point at the offending fact.
    AtLine { line: usize, source: Box<GromError> },
}

/// Historical name for [`GromError`]; schema- and instance-level call sites
/// were written against this alias.
pub type DataError = GromError;

impl GromError {
    /// Annotate this error with the 1-based source line it arose at.
    /// Syntax errors and already-annotated errors keep their original line.
    pub fn at_line(self, line: usize) -> Self {
        match self {
            GromError::Syntax { .. } | GromError::AtLine { .. } => self,
            other => GromError::AtLine {
                line,
                source: Box::new(other),
            },
        }
    }

    /// The source line this error points at, if known.
    pub fn line(&self) -> Option<usize> {
        match self {
            GromError::Syntax { line, .. } | GromError::AtLine { line, .. } => Some(*line),
            _ => None,
        }
    }

    /// The relation this error concerns, if any.
    pub fn relation(&self) -> Option<&Arc<str>> {
        match self {
            GromError::DuplicateRelation { relation }
            | GromError::DuplicateColumn { relation, .. }
            | GromError::UnknownRelation { relation }
            | GromError::ArityMismatch { relation, .. }
            | GromError::TypeMismatch { relation, .. } => Some(relation),
            GromError::AtLine { source, .. } => source.relation(),
            GromError::Syntax { .. } => None,
        }
    }

    /// Strip any line annotation, exposing the underlying error.
    pub fn unwrap_context(&self) -> &GromError {
        match self {
            GromError::AtLine { source, .. } => source.unwrap_context(),
            other => other,
        }
    }
}

impl fmt::Display for GromError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GromError::DuplicateRelation { relation } => {
                write!(f, "relation `{relation}` declared more than once")
            }
            GromError::DuplicateColumn { relation, column } => {
                write!(
                    f,
                    "column `{column}` declared more than once in relation `{relation}`"
                )
            }
            GromError::UnknownRelation { relation } => {
                write!(f, "unknown relation `{relation}`")
            }
            GromError::ArityMismatch {
                relation,
                expected,
                actual,
            } => write!(
                f,
                "relation `{relation}` has arity {expected}, got a tuple of width {actual}"
            ),
            GromError::TypeMismatch {
                relation,
                column,
                expected,
                actual,
            } => write!(
                f,
                "value {actual} does not fit column `{relation}.{column}` of type {expected}"
            ),
            GromError::Syntax { line, message } => {
                write!(f, "line {line}: {message}")
            }
            GromError::AtLine { line, source } => {
                write!(f, "line {line}: {source}")
            }
        }
    }
}

impl std::error::Error for GromError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_line_annotates_and_is_idempotent() {
        let e = GromError::UnknownRelation {
            relation: Arc::from("R"),
        };
        assert_eq!(e.line(), None);
        let e = e.at_line(7);
        assert_eq!(e.line(), Some(7));
        assert_eq!(e.relation().map(|r| r.as_ref()), Some("R"));
        // A second annotation does not override the first.
        let e = e.at_line(99);
        assert_eq!(e.line(), Some(7));
        assert_eq!(e.to_string(), "line 7: unknown relation `R`");
        assert!(matches!(
            e.unwrap_context(),
            GromError::UnknownRelation { .. }
        ));
    }

    #[test]
    fn syntax_errors_keep_their_own_line() {
        let e = GromError::Syntax {
            line: 3,
            message: "bad token".into(),
        };
        let e = e.at_line(10);
        assert_eq!(e.line(), Some(3));
        assert_eq!(e.to_string(), "line 3: bad token");
    }
}
