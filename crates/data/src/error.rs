//! Errors raised by the relational substrate.

use std::fmt;
use std::sync::Arc;

use crate::schema::ColumnType;
use crate::value::Value;

/// Errors raised when building schemas or inserting data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// A relation name was declared twice in the same schema.
    DuplicateRelation { relation: Arc<str> },
    /// A column name was declared twice in the same relation.
    DuplicateColumn { relation: Arc<str>, column: String },
    /// A fact refers to a relation the schema does not declare.
    UnknownRelation { relation: Arc<str> },
    /// A fact has the wrong number of values for its relation.
    ArityMismatch {
        relation: Arc<str>,
        expected: usize,
        actual: usize,
    },
    /// A value does not conform to the declared column type.
    TypeMismatch {
        relation: Arc<str>,
        column: String,
        expected: ColumnType,
        actual: Value,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::DuplicateRelation { relation } => {
                write!(f, "relation `{relation}` declared more than once")
            }
            DataError::DuplicateColumn { relation, column } => {
                write!(
                    f,
                    "column `{column}` declared more than once in relation `{relation}`"
                )
            }
            DataError::UnknownRelation { relation } => {
                write!(f, "unknown relation `{relation}`")
            }
            DataError::ArityMismatch {
                relation,
                expected,
                actual,
            } => write!(
                f,
                "relation `{relation}` has arity {expected}, got a tuple of width {actual}"
            ),
            DataError::TypeMismatch {
                relation,
                column,
                expected,
                actual,
            } => write!(
                f,
                "value {actual} does not fit column `{relation}.{column}` of type {expected}"
            ),
        }
    }
}

impl std::error::Error for DataError {}
