//! String interning: the [`SymbolTable`] and the [`Sym`] value payload.
//!
//! The chase's hot loops — join probes, embedding checks, egd unification —
//! compare and hash string constants millions of times. A [`Sym`] carries a
//! dense `u32` id assigned by a [`SymbolTable`], so equality and hashing
//! cost one integer comparison instead of a string walk; the text rides
//! along (reference-counted) so rendering and error messages never need the
//! table.
//!
//! Interning is **opt-in and scoped to one run**: the pipeline interns the
//! working instance and the rewritten program together at a single choke
//! point, chases over `Value::Sym` constants, and resolves symbols back to
//! plain strings when the target instance is extracted. Code that never
//! interns (tests, examples, ad-hoc instances) keeps using `Value::Str` and
//! the two kinds never mix inside one database.
//!
//! Ids are deterministic: they are assigned in first-intern order, and the
//! pipeline interns facts and program constants in a deterministic order
//! (relations sorted by name, tuples in insertion order, then dependencies
//! in declaration order), so the same scenario produces the same id
//! assignment on every run and on every thread.

use crate::hash::FxHashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// An interned string constant: a dense id plus the text it stands for.
///
/// Equality and hashing use **only the id** — that is the whole point of
/// interning — so two `Sym`s must come from the same [`SymbolTable`] to be
/// comparable. Ordering is by text (then id), which keeps `Ord` consistent
/// with `Eq` within one table and makes sorted renderings independent of
/// the id assignment.
#[derive(Debug, Clone)]
pub struct Sym {
    id: u32,
    text: Arc<str>,
}

impl Sym {
    /// The dense id assigned by the interning table.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The interned text.
    pub fn text(&self) -> &Arc<str> {
        &self.text
    }

    pub fn as_str(&self) -> &str {
        &self.text
    }
}

impl PartialEq for Sym {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}

impl Eq for Sym {}

impl Hash for Sym {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.id.hash(state);
    }
}

impl PartialOrd for Sym {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Sym {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.text
            .as_ref()
            .cmp(other.text.as_ref())
            .then(self.id.cmp(&other.id))
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// The interning table: text → dense id, first-intern order.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    ids: FxHashMap<Arc<str>, u32>,
    texts: Vec<Arc<str>>,
}

impl SymbolTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `text`, returning its symbol. Re-interning the same text
    /// returns the same id.
    pub fn intern(&mut self, text: &Arc<str>) -> Sym {
        if let Some(&id) = self.ids.get(text.as_ref()) {
            return Sym {
                id,
                text: self.texts[id as usize].clone(),
            };
        }
        let id = u32::try_from(self.texts.len()).expect("symbol table overflow");
        self.ids.insert(text.clone(), id);
        self.texts.push(text.clone());
        Sym {
            id,
            text: text.clone(),
        }
    }

    /// The symbol for `text`, if it was interned.
    pub fn get(&self, text: &str) -> Option<Sym> {
        self.ids.get(text).map(|&id| Sym {
            id,
            text: self.texts[id as usize].clone(),
        })
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.texts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.texts.is_empty()
    }

    /// The interned texts in id order — the deterministic fingerprint of a
    /// table (two runs interning the same inputs in the same order produce
    /// identical snapshots).
    pub fn snapshot(&self) -> Vec<Arc<str>> {
        self.texts.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arc(s: &str) -> Arc<str> {
        Arc::from(s)
    }

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut t = SymbolTable::new();
        let a = t.intern(&arc("alpha"));
        let b = t.intern(&arc("beta"));
        let a2 = t.intern(&arc("alpha"));
        assert_eq!(a.id(), 0);
        assert_eq!(b.id(), 1);
        assert_eq!(a, a2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get("beta").unwrap().id(), 1);
        assert!(t.get("gamma").is_none());
    }

    #[test]
    fn equality_and_hash_are_by_id() {
        use std::collections::hash_map::DefaultHasher;
        let mut t = SymbolTable::new();
        let a = t.intern(&arc("x"));
        let b = t.intern(&arc("y"));
        assert_ne!(a, b);
        let mut h1 = DefaultHasher::new();
        let mut h2 = DefaultHasher::new();
        a.hash(&mut h1);
        t.intern(&arc("x")).hash(&mut h2);
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn ordering_is_by_text() {
        let mut t = SymbolTable::new();
        let z = t.intern(&arc("z"));
        let a = t.intern(&arc("a"));
        assert!(a < z); // despite a having the larger id
    }

    #[test]
    fn snapshot_is_first_intern_order() {
        let mut t = SymbolTable::new();
        t.intern(&arc("one"));
        t.intern(&arc("two"));
        t.intern(&arc("one"));
        let snap: Vec<String> = t.snapshot().iter().map(|s| s.to_string()).collect();
        assert_eq!(snap, vec!["one", "two"]);
    }
}
