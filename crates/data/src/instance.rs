//! In-memory database instances.
//!
//! An [`Instance`] maps relation names to [`Relation`]s: deduplicated,
//! insertion-ordered tuple sets with eager per-column hash indexes plus
//! optional **composite-key indexes** on the join-key position sets the
//! chase's static trigger analysis knows about. The indexes are what make
//! the nested-loop joins of `grom-engine` and the violation search of
//! `grom-chase` tolerable on instances with hundreds of thousands of
//! tuples.
//!
//! Relation names resolve once to a dense [`RelId`]; hot-path callers (the
//! redesigned `Db` trait in `grom-engine`) resolve a name a single time per
//! evaluation and then address the relation by id — one bounds-checked
//! vector index instead of a string hash per probe. Ids are stable for the
//! lifetime of an instance (including across null substitutions) and are
//! assigned in first-insert order; sorted-by-name iteration is preserved
//! for every rendering path.
//!
//! Null substitution is *surgical*: only null-bearing rows are rewritten
//! (located through the column indexes), leaving tombstones behind instead
//! of rebuilding whole relations; a junk counter triggers compaction when
//! tombstones and stale index entries accumulate.
//!
//! Instances are *schema-less* at this layer: the first tuple inserted into
//! a relation fixes its arity, and later inserts are checked against it.
//! Typed validation against a [`crate::schema::Schema`] is performed by the
//! scenario loader in `grom` (the core crate), which knows which schema an
//! instance is supposed to populate.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::error::DataError;
use crate::hash::{FxHashMap, FxHasher};
use crate::symbol::SymbolTable;
use crate::tuple::{Fact, Tuple};
use crate::value::{NullId, Value};

/// A dense relation id, assigned in first-insert order and stable for the
/// lifetime of the instance. Resolve once with [`Instance::rel_id`], then
/// address the relation with [`Instance::relation_by_id`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelId(pub u32);

/// A version window over a relation's append-ordered slots, splitting the
/// relation into an *old* and a *new* half around a slot cursor.
///
/// Rows are only ever appended (null substitution tombstones a slot and
/// re-appends the rewritten tuple), so a slot cursor `c` cleanly versions a
/// relation: live slots `< c` are the old half, live slots `>= c` the new
/// half. The semi-naive delta evaluator in `grom-engine` scans premise
/// atoms before its anchor old-only and the anchor new-only, so each match
/// is enumerated exactly once across anchor positions. Cursors come from
/// [`Relation::cursor_before_last`]; they are positional and only
/// meaningful against the relation state they were computed from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Span {
    /// All live rows (the unversioned view).
    All,
    /// Only live rows in slots strictly below the cursor (the *old* half).
    Below(u32),
    /// Only live rows in slots at or above the cursor (the *new* half).
    AtLeast(u32),
}

/// A composite-key hash index over a set of column positions.
///
/// Buckets are keyed by a 64-bit hash of the key values rather than the
/// values themselves: no allocation or `Value` clone per insert/probe, at
/// the price of possible collisions — which are safe, because every reader
/// re-checks the full pattern against the live tuple (the same contract
/// stale buckets already impose).
#[derive(Debug, Clone)]
struct KeyIndex {
    /// Sorted, deduplicated column positions (always ≥ 2 of them; single
    /// columns are covered by the per-column indexes).
    cols: Vec<usize>,
    /// Hash of the values at `cols` (in order) → row ids.
    map: FxHashMap<u64, Vec<u32>>,
}

/// Hash a sequence of key values into one composite bucket key.
fn composite_hash<'a>(values: impl Iterator<Item = &'a Value>) -> u64 {
    let mut h = FxHasher::default();
    for v in values {
        v.hash(&mut h);
    }
    h.finish()
}

impl KeyIndex {
    fn key_of(&self, tuple: &Tuple) -> u64 {
        composite_hash(self.cols.iter().map(|&c| &tuple.values()[c]))
    }
}

/// One relation: an insertion-ordered set of tuples plus per-column and
/// composite-key indexes.
///
/// Rows live in a slot vector; null substitution tombstones rewritten slots
/// (`None`) instead of rebuilding, so row ids referenced by index buckets
/// stay valid. Buckets may contain *stale* entries (tombstoned slots, or
/// live rows whose value changed); every reader re-checks the full pattern
/// against the live tuple, and a junk counter triggers a full compaction
/// when stale state outweighs live rows.
#[derive(Debug, Clone, Default)]
pub struct Relation {
    /// Tuple slots in insertion order; `None` is a tombstone left by null
    /// substitution. Live slots never contain duplicates.
    rows: Vec<Option<Tuple>>,
    /// Number of live (non-tombstone) slots.
    live: usize,
    /// Tombstones + rewritten rows whose old index entries are stale.
    junk: usize,
    /// Tuple → slot in `rows`, for O(1) membership tests.
    positions: FxHashMap<Tuple, u32>,
    /// `indexes[c][v]` = row ids whose column `c` holds (or held) value `v`.
    indexes: Vec<FxHashMap<Value, Vec<u32>>>,
    /// Composite-key indexes registered via [`Relation::register_key`].
    keys: Vec<KeyIndex>,
    /// Key registrations received before the arity was known.
    requested_keys: Vec<Vec<usize>>,
    arity: Option<usize>,
}

impl Relation {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.live
    }

    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The arity fixed by the first insert, if any tuple was ever inserted.
    pub fn arity(&self) -> Option<usize> {
        self.arity
    }

    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.positions.contains_key(tuple)
    }

    /// Register a composite-key index over `cols` (column positions of this
    /// relation). Positions are sorted and deduplicated; sets of fewer than
    /// two columns are ignored (the per-column indexes already cover them),
    /// as are duplicates of an existing key and positions beyond the arity.
    /// Existing rows are backfilled. Returns whether a new index was
    /// installed (or queued, when the arity is not yet known).
    pub fn register_key(&mut self, cols: &[usize]) -> bool {
        let mut cols: Vec<usize> = cols.to_vec();
        cols.sort_unstable();
        cols.dedup();
        if cols.len() < 2 {
            return false;
        }
        match self.arity {
            None => {
                if self.requested_keys.contains(&cols) {
                    return false;
                }
                self.requested_keys.push(cols);
                true
            }
            Some(a) => self.install_key(cols, a),
        }
    }

    fn install_key(&mut self, cols: Vec<usize>, arity: usize) -> bool {
        if cols.last().is_some_and(|&c| c >= arity) {
            return false;
        }
        if self.keys.iter().any(|k| k.cols == cols) {
            return false;
        }
        let mut key = KeyIndex {
            cols,
            map: FxHashMap::default(),
        };
        for (r, slot) in self.rows.iter().enumerate() {
            if let Some(t) = slot {
                key.map.entry(key.key_of(t)).or_default().push(r as u32);
            }
        }
        self.keys.push(key);
        true
    }

    /// The column-position sets of the registered (and still pending)
    /// composite-key indexes.
    pub fn key_specs(&self) -> impl Iterator<Item = &[usize]> {
        self.keys
            .iter()
            .map(|k| k.cols.as_slice())
            .chain(self.requested_keys.iter().map(Vec::as_slice))
    }

    /// Insert a tuple. Returns `Ok(true)` if it was new, `Ok(false)` if it
    /// was already present, and an arity error if it does not match the
    /// relation's fixed width.
    fn insert(&mut self, relation: &Arc<str>, tuple: Tuple) -> Result<bool, DataError> {
        match self.arity {
            None => {
                let a = tuple.arity();
                self.arity = Some(a);
                self.indexes = vec![FxHashMap::default(); a];
                for cols in std::mem::take(&mut self.requested_keys) {
                    self.install_key(cols, a);
                }
            }
            Some(a) if a != tuple.arity() => {
                return Err(DataError::ArityMismatch {
                    relation: relation.clone(),
                    expected: a,
                    actual: tuple.arity(),
                });
            }
            Some(_) => {}
        }
        if self.positions.contains_key(&tuple) {
            return Ok(false);
        }
        let row_id = self.rows.len() as u32;
        self.place(row_id, tuple, true);
        Ok(true)
    }

    /// Record `tuple` at slot `row_id` in every index. With `append`, the
    /// slot is pushed; otherwise `rows[row_id]` is overwritten.
    fn place(&mut self, row_id: u32, tuple: Tuple, append: bool) {
        for (c, v) in tuple.values().iter().enumerate() {
            self.indexes[c].entry(v.clone()).or_default().push(row_id);
        }
        for i in 0..self.keys.len() {
            let key = self.keys[i].key_of(&tuple);
            self.keys[i].map.entry(key).or_default().push(row_id);
        }
        self.positions.insert(tuple.clone(), row_id);
        if append {
            debug_assert_eq!(row_id as usize, self.rows.len());
            self.rows.push(Some(tuple));
        } else {
            self.rows[row_id as usize] = Some(tuple);
        }
        self.live += 1;
    }

    /// Iterate over live tuples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.rows.iter().filter_map(Option::as_ref)
    }

    /// The slot just past the newest row: the cursor under which every
    /// current row is *old* ([`Span::Below`] of it is the whole relation).
    pub fn frontier(&self) -> u32 {
        self.rows.len() as u32
    }

    /// The cursor that splits off the last `n` live rows as the *new* half:
    /// [`Span::AtLeast`] of the returned cursor covers exactly the `n`
    /// most recently inserted live tuples, [`Span::Below`] everything
    /// older. `n == 0` yields the [`Relation::frontier`] (nothing is new);
    /// `n >= len()` yields 0 (everything is new).
    ///
    /// This is how the delta scheduler versions a relation at claim time:
    /// a claimed delta of `n` tuples is, by the append-only row discipline,
    /// exactly the relation's trailing `n` live rows, so the old/new split
    /// needs no stored promotion state — "promote" is simply recomputing
    /// the cursor against the next claim.
    pub fn cursor_before_last(&self, n: usize) -> u32 {
        if n == 0 {
            return self.frontier();
        }
        let mut remaining = n;
        for (i, slot) in self.rows.iter().enumerate().rev() {
            if slot.is_some() {
                remaining -= 1;
                if remaining == 0 {
                    return i as u32;
                }
            }
        }
        0
    }

    /// Row ids whose column `col` equals (or once equaled) `value`. May
    /// contain stale entries; readers re-check the live tuple.
    fn rows_with(&self, col: usize, value: &Value) -> &[u32] {
        self.indexes
            .get(col)
            .and_then(|ix| ix.get(value))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// The smallest index bucket usable for `pattern`: the best single
    /// bound column, or a composite-key bucket when a registered key is
    /// fully bound. `None` means the pattern is entirely unbound (full
    /// scan).
    fn best_bucket(&self, pattern: &[Option<Value>]) -> Option<&[u32]> {
        let mut best: Option<&[u32]> = None;
        for (c, slot) in pattern.iter().enumerate() {
            if let Some(v) = slot {
                let b = self.rows_with(c, v);
                if best.is_none_or(|x| b.len() < x.len()) {
                    best = Some(b);
                }
            }
        }
        for k in &self.keys {
            if k.cols
                .iter()
                .all(|&c| pattern.get(c).is_some_and(Option::is_some))
            {
                let key = composite_hash(
                    k.cols
                        .iter()
                        .map(|&c| pattern[c].as_ref().expect("checked bound")),
                );
                let b = k.map.get(&key).map(Vec::as_slice).unwrap_or(&[]);
                if best.is_none_or(|x| b.len() < x.len()) {
                    best = Some(b);
                }
            }
        }
        best
    }

    /// Stream the tuples matching `pattern` into `visit`, using the most
    /// selective available index bucket (composite keys included) and no
    /// intermediate allocation. `visit` returns `false` to stop early;
    /// `scan_each` returns whether the scan ran to completion.
    ///
    /// `pattern[i] = Some(v)` requires column `i` to equal `v`; `None`
    /// leaves it unconstrained.
    pub fn scan_each<'a>(
        &'a self,
        pattern: &[Option<Value>],
        visit: &mut dyn FnMut(&'a Tuple) -> bool,
    ) -> bool {
        self.scan_each_v(pattern, Span::All, visit)
    }

    /// [`Relation::scan_each`] restricted to one version half. Index
    /// buckets hold row ids in ascending slot order (rows only append), so
    /// a bucket is narrowed to the span with one `partition_point` — the
    /// composite-key indexes stay coherent across both halves for free.
    pub fn scan_each_v<'a>(
        &'a self,
        pattern: &[Option<Value>],
        span: Span,
        visit: &mut dyn FnMut(&'a Tuple) -> bool,
    ) -> bool {
        debug_assert_eq!(Some(pattern.len()), self.arity.or(Some(pattern.len())));
        let matches = |t: &Tuple| {
            pattern
                .iter()
                .zip(t.values())
                .all(|(slot, v)| slot.as_ref().is_none_or(|s| s == v))
        };
        match self.best_bucket(pattern) {
            Some(bucket) => {
                let bucket = match span {
                    Span::All => bucket,
                    Span::Below(c) => &bucket[..bucket.partition_point(|&r| r < c)],
                    Span::AtLeast(c) => &bucket[bucket.partition_point(|&r| r < c)..],
                };
                for &r in bucket {
                    if let Some(t) = self.rows[r as usize].as_ref() {
                        if matches(t) && !visit(t) {
                            return false;
                        }
                    }
                }
            }
            None => {
                let rows = match span {
                    Span::All => &self.rows[..],
                    Span::Below(c) => &self.rows[..(c as usize).min(self.rows.len())],
                    Span::AtLeast(c) => &self.rows[(c as usize).min(self.rows.len())..],
                };
                for t in rows.iter().filter_map(Option::as_ref) {
                    if matches(t) && !visit(t) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Tuples matching a pattern, collected into a `Vec`. Prefer
    /// [`Relation::scan_each`] on hot paths — this convenience wrapper
    /// allocates.
    pub fn scan<'a>(&'a self, pattern: &[Option<Value>]) -> Vec<&'a Tuple> {
        let mut out = Vec::new();
        self.scan_each(pattern, &mut |t| {
            out.push(t);
            true
        });
        out
    }

    /// An upper bound on the number of tuples matching `pattern`, computed
    /// from the index buckets without touching any tuple: the smallest
    /// bucket among bound columns and fully-bound composite keys, or the
    /// live row count when the pattern is entirely unbound. The join
    /// planner in `grom-engine` uses this as its cardinality estimate.
    /// Stale entries may inflate the bound; never undercounts.
    pub fn estimate(&self, pattern: &[Option<Value>]) -> usize {
        self.estimate_v(pattern, Span::All)
    }

    /// [`Relation::estimate`] restricted to one version half. The bucket
    /// bound narrows with the same `partition_point` slice the versioned
    /// scan uses; the unbound bound is the slot count of the half (which,
    /// like `live`, may overcount by tombstones — never undercounts).
    pub fn estimate_v(&self, pattern: &[Option<Value>], span: Span) -> usize {
        match self.best_bucket(pattern) {
            Some(bucket) => match span {
                Span::All => bucket.len(),
                Span::Below(c) => bucket.partition_point(|&r| r < c),
                Span::AtLeast(c) => bucket.len() - bucket.partition_point(|&r| r < c),
            },
            None => match span {
                Span::All => self.live,
                Span::Below(c) => self.live.min(c as usize),
                Span::AtLeast(c) => self.rows.len().saturating_sub(c as usize),
            },
        }
    }

    /// Does any tuple match the pattern? Cheaper than [`Relation::scan`]
    /// when only existence matters (negated literals, denial checks).
    pub fn any_match(&self, pattern: &[Option<Value>]) -> bool {
        !self.scan_each(pattern, &mut |_| false)
    }

    /// Rows (ascending slot order) whose tuple mentions a null mapped by
    /// `map`. Probes the null buckets of the column indexes when the map is
    /// small relative to the relation; falls back to a row sweep otherwise.
    fn affected_rows(&self, map: &HashMap<NullId, Value>) -> Vec<u32> {
        let Some(arity) = self.arity else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let probe_cost = map.len().saturating_mul(arity.max(1));
        if probe_cost < self.rows.len() {
            let mut seen = BTreeSet::new();
            for id in map.keys() {
                let needle = Value::Null(*id);
                for c in 0..arity {
                    seen.extend(self.rows_with(c, &needle).iter().copied());
                }
            }
            for r in seen {
                // Buckets may be stale: re-check the live tuple.
                if let Some(t) = self.rows[r as usize].as_ref() {
                    if t.nulls().any(|n| map.contains_key(&n)) {
                        out.push(r);
                    }
                }
            }
        } else {
            for (r, slot) in self.rows.iter().enumerate() {
                if let Some(t) = slot {
                    if t.nulls().any(|n| map.contains_key(&n)) {
                        out.push(r as u32);
                    }
                }
            }
        }
        out
    }

    /// Rewrite the null-bearing rows addressed by `map` in place, leaving
    /// tombstones where rewritten tuples merged into existing ones.
    /// Returns whether anything changed.
    fn substitute_with(&mut self, map: &HashMap<NullId, Value>) -> bool {
        let affected = self.affected_rows(map);
        if affected.is_empty() {
            return false;
        }
        // Phase 1: lift every affected row out, so phase 2's merge checks
        // see a consistent membership map.
        let mut taken: Vec<Tuple> = Vec::with_capacity(affected.len());
        for &r in &affected {
            let t = self.rows[r as usize].take().expect("affected row is live");
            self.positions.remove(&t);
            self.live -= 1;
            self.junk += 1;
            taken.push(t);
        }
        // Phase 2: rewrite and re-append in the old slot order; tuples that
        // collide with a surviving row simply merge (their slot stays a
        // tombstone).
        for old in taken {
            let (new, _) = old.substitute_nulls(&mut |id| map.get(&id).cloned());
            if self.positions.contains_key(&new) {
                continue;
            }
            let row_id = self.rows.len() as u32;
            self.place(row_id, new, true);
        }
        self.maybe_compact();
        true
    }

    fn maybe_compact(&mut self) {
        if self.junk > 64 && self.junk > self.live {
            self.compact();
        }
    }

    /// Rebuild rows, membership and every index from the live tuples,
    /// dropping tombstones and stale bucket entries. Insertion order of the
    /// survivors is preserved.
    fn compact(&mut self) {
        let arity = self.arity.unwrap_or(0);
        let old_rows = std::mem::take(&mut self.rows);
        self.positions.clear();
        self.indexes = vec![FxHashMap::default(); arity];
        for k in &mut self.keys {
            k.map.clear();
        }
        self.live = 0;
        self.junk = 0;
        self.rows = Vec::with_capacity(self.positions.capacity());
        for t in old_rows.into_iter().flatten() {
            let row_id = self.rows.len() as u32;
            self.place(row_id, t, true);
        }
    }
}

/// A log of tuples inserted into an [`Instance`] while delta tracking is
/// enabled, grouped by relation.
///
/// This is the bookkeeping half of the delta-driven (semi-naive) chase
/// scheduler in `grom-chase`: after a batch of repairs, the scheduler
/// drains the log with [`Instance::take_delta`] and feeds the new tuples —
/// and only those — back into premise evaluation. Null substitution
/// rewrites tuples in place, so [`Instance::substitute_nulls`] marks the
/// log *invalidated* instead of trying to track the rewrite; consumers
/// must fall back to a full rescan.
#[derive(Debug, Clone, Default)]
pub struct DeltaLog {
    tuples: BTreeMap<Arc<str>, Vec<Tuple>>,
    invalidated: bool,
}

impl DeltaLog {
    /// No new tuples and not invalidated?
    pub fn is_empty(&self) -> bool {
        !self.invalidated && self.tuples.is_empty()
    }

    /// Total number of logged tuples.
    pub fn len(&self) -> usize {
        self.tuples.values().map(Vec::len).sum()
    }

    /// Was the log invalidated by a null substitution? Logged tuples may be
    /// stale; consumers must fall back to a full rescan.
    pub fn invalidated(&self) -> bool {
        self.invalidated
    }

    /// The logged tuples, grouped by relation (sorted by name).
    pub fn relations(&self) -> impl Iterator<Item = (&Arc<str>, &[Tuple])> {
        self.tuples.iter().map(|(name, ts)| (name, ts.as_slice()))
    }

    fn record(&mut self, relation: &Arc<str>, tuple: Tuple) {
        self.tuples.entry(relation.clone()).or_default().push(tuple);
    }

    /// Append all of `other`'s tuples to this log, preserving per-relation
    /// order. Invalidation is sticky: absorbing an invalidated log marks
    /// this one invalidated too. The parallel chase executor uses this to
    /// fold one worker's per-dependency logs into its sweep output.
    pub fn absorb(&mut self, other: &DeltaLog) {
        for (rel, tuples) in other.relations() {
            self.tuples
                .entry(rel.clone())
                .or_default()
                .extend(tuples.iter().cloned());
        }
        self.invalidated |= other.invalidated;
    }
}

/// A database instance: relation name → [`Relation`], with dense [`RelId`]
/// resolution for hot-path callers.
#[derive(Debug, Clone, Default)]
pub struct Instance {
    /// Name → dense id; the sorted iteration order of every rendering path.
    names: BTreeMap<Arc<str>, RelId>,
    /// Relations addressed by [`RelId`], in first-insert order.
    store: Vec<(Arc<str>, Relation)>,
    /// Composite-key registrations for relations that do not exist yet;
    /// applied when the relation is first created.
    pending_keys: BTreeMap<Arc<str>, Vec<Vec<usize>>>,
    /// Delta log, present only while tracking is enabled.
    delta: Option<DeltaLog>,
}

impl Instance {
    pub fn new() -> Self {
        Self::default()
    }

    /// Build an instance from an iterator of facts.
    pub fn from_facts(facts: impl IntoIterator<Item = Fact>) -> Result<Self, DataError> {
        let mut inst = Instance::new();
        for f in facts {
            inst.insert_fact(f)?;
        }
        Ok(inst)
    }

    /// Insert a fact; returns whether it was new.
    pub fn insert_fact(&mut self, fact: Fact) -> Result<bool, DataError> {
        self.insert(&fact.relation, fact.tuple)
    }

    /// The dense id of `name`, if the relation exists. Ids are stable for
    /// the lifetime of this instance (null substitution included).
    pub fn rel_id(&self, name: &str) -> Option<RelId> {
        self.names.get(name).copied()
    }

    /// The relation with id `id`.
    ///
    /// # Panics
    /// If `id` did not come from this instance's [`Instance::rel_id`].
    pub fn relation_by_id(&self, id: RelId) -> &Relation {
        &self.store[id.0 as usize].1
    }

    /// The name of the relation with id `id`.
    pub fn rel_name(&self, id: RelId) -> &Arc<str> {
        &self.store[id.0 as usize].0
    }

    /// Insert a tuple into `relation`; returns whether it was new.
    pub fn insert(&mut self, relation: &Arc<str>, tuple: Tuple) -> Result<bool, DataError> {
        let id = match self.names.get(relation.as_ref()) {
            Some(&id) => id,
            None => {
                let id = RelId(self.store.len() as u32);
                self.names.insert(relation.clone(), id);
                let mut rel = Relation::new();
                if let Some(specs) = self.pending_keys.remove(relation.as_ref()) {
                    for cols in specs {
                        rel.register_key(&cols);
                    }
                }
                self.store.push((relation.clone(), rel));
                id
            }
        };
        let rel = &mut self.store[id.0 as usize].1;
        let Some(delta) = &mut self.delta else {
            return rel.insert(relation, tuple);
        };
        // With tracking on, duplicates are the common case on the chase's
        // hot path (re-derivations); skip the log clone for them.
        if rel.contains(&tuple) {
            return Ok(false);
        }
        let logged = tuple.clone();
        let new = rel.insert(relation, tuple)?;
        if new {
            delta.record(relation, logged);
        }
        Ok(new)
    }

    /// Register a composite-key index on `relation` over column positions
    /// `cols`. If the relation does not exist yet, the registration is
    /// remembered and applied when it is first created — the chase wires up
    /// the join keys its trigger analysis discovered before any conclusion
    /// relation is materialized.
    pub fn register_key(&mut self, relation: &str, cols: &[usize]) {
        match self.names.get(relation) {
            Some(&id) => {
                self.store[id.0 as usize].1.register_key(cols);
            }
            None => {
                let mut cols: Vec<usize> = cols.to_vec();
                cols.sort_unstable();
                cols.dedup();
                if cols.len() < 2 {
                    return;
                }
                let entry = self.pending_keys.entry(Arc::from(relation)).or_default();
                if !entry.contains(&cols) {
                    entry.push(cols);
                }
            }
        }
    }

    /// Start recording newly inserted tuples into a [`DeltaLog`]. Clears any
    /// previous log. Tracking stays on until [`Instance::end_delta_tracking`].
    pub fn begin_delta_tracking(&mut self) {
        self.delta = Some(DeltaLog::default());
    }

    /// Drain the current delta log, leaving tracking enabled with a fresh
    /// empty log. Returns an empty log when tracking is off.
    pub fn take_delta(&mut self) -> DeltaLog {
        match &mut self.delta {
            Some(delta) => std::mem::take(delta),
            None => DeltaLog::default(),
        }
    }

    /// Stop delta tracking and return the final log (empty if tracking was
    /// never enabled).
    pub fn end_delta_tracking(&mut self) -> DeltaLog {
        self.delta.take().unwrap_or_default()
    }

    /// Is delta tracking currently enabled?
    pub fn is_delta_tracking(&self) -> bool {
        self.delta.is_some()
    }

    /// Convenience insert with a `&str` relation name and raw values.
    pub fn add(
        &mut self,
        relation: impl AsRef<str>,
        values: Vec<Value>,
    ) -> Result<bool, DataError> {
        self.insert(&Arc::from(relation.as_ref()), Tuple::new(values))
    }

    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.names.get(name).map(|&id| &self.store[id.0 as usize].1)
    }

    /// Tuples of `name`, or an empty iterator if the relation is absent.
    pub fn tuples(&self, name: &str) -> impl Iterator<Item = &Tuple> {
        self.relation(name).into_iter().flat_map(Relation::iter)
    }

    pub fn contains_fact(&self, relation: &str, tuple: &Tuple) -> bool {
        self.relation(relation).is_some_and(|r| r.contains(tuple))
    }

    /// Relation names present in this instance (sorted).
    pub fn relation_names(&self) -> impl Iterator<Item = &Arc<str>> {
        self.names.keys()
    }

    /// All facts, grouped by relation (sorted) and then insertion order.
    pub fn facts(&self) -> impl Iterator<Item = Fact> + '_ {
        self.names.iter().flat_map(|(name, &id)| {
            self.store[id.0 as usize].1.iter().map(move |t| Fact {
                relation: name.clone(),
                tuple: t.clone(),
            })
        })
    }

    /// Total number of tuples across all relations.
    pub fn len(&self) -> usize {
        self.store.iter().map(|(_, r)| r.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Merge all facts of `other` into `self`.
    pub fn absorb(&mut self, other: &Instance) -> Result<(), DataError> {
        for (name, id) in &other.names {
            for t in other.store[id.0 as usize].1.iter() {
                self.insert(name, t.clone())?;
            }
        }
        Ok(())
    }

    /// The union of two instances as a new instance.
    pub fn union(&self, other: &Instance) -> Result<Instance, DataError> {
        let mut out = self.clone();
        out.absorb(other)?;
        Ok(out)
    }

    /// Insert every tuple of a [`DeltaLog`] into this instance, in the
    /// log's deterministic order (relations sorted by name, tuples in
    /// insertion order). Returns the number of tuples that were new.
    ///
    /// This is the sweep-barrier merge of the parallel chase executor:
    /// workers buffer insertions against an immutable snapshot, and the
    /// coordinator folds the buffers back in job order so the merged
    /// instance is identical across runs regardless of thread scheduling.
    pub fn absorb_delta(&mut self, delta: &DeltaLog) -> Result<usize, DataError> {
        let mut added = 0;
        for (rel, tuples) in delta.relations() {
            for t in tuples {
                if self.insert(rel, t.clone())? {
                    added += 1;
                }
            }
        }
        Ok(added)
    }

    /// The largest null label occurring anywhere, if any. Chase runs over an
    /// instance that already contains nulls start their generator above it.
    pub fn max_null_label(&self) -> Option<u64> {
        self.store
            .iter()
            .flat_map(|(_, r)| r.iter())
            .flat_map(|t| t.nulls())
            .map(|NullId(l)| l)
            .max()
    }

    /// Replace every `Value::Str` constant with its interned
    /// [`Value::Sym`], interning through `table` in deterministic order
    /// (relations sorted by name, tuples in insertion order). Relation
    /// structure, registered keys and insertion order carry over; delta
    /// tracking state does not (the chase re-enables it).
    pub fn intern_strings(&self, table: &mut SymbolTable) -> Instance {
        let mut out = Instance::new();
        for (name, &id) in &self.names {
            for cols in self.store[id.0 as usize].1.key_specs() {
                out.register_key(name, cols);
            }
            for t in self.store[id.0 as usize].1.iter() {
                let values: Vec<Value> = t
                    .values()
                    .iter()
                    .map(|v| match v {
                        Value::Str(s) => Value::Sym(table.intern(s)),
                        other => other.clone(),
                    })
                    .collect();
                out.insert(name, Tuple::new(values))
                    .expect("interning preserves arity");
            }
        }
        out
    }

    /// Resolve every interned [`Value::Sym`] back to a plain `Value::Str`
    /// constant. Inverse of [`Instance::intern_strings`] up to index
    /// bookkeeping.
    pub fn unintern_strings(&self) -> Instance {
        let mut out = Instance::new();
        for (name, &id) in &self.names {
            for t in self.store[id.0 as usize].1.iter() {
                let values: Vec<Value> = t.values().iter().map(Value::unintern).collect();
                out.insert(name, Tuple::new(values))
                    .expect("uninterning preserves arity");
            }
        }
        out
    }

    /// Apply a *fully resolved* multi-mapping null substitution in one
    /// surgical pass: `map` sends each mapped label directly to its final
    /// value (no chains — the caller collapses them once, e.g. with the
    /// chase's `NullMap::flatten`). Only the rows that actually mention a
    /// mapped null are rewritten — located through the column indexes —
    /// instead of rebuilding whole relations; tuples that become equal
    /// after substitution merge, leaving tombstones that compaction reclaims.
    ///
    /// This is the entry point of sweep-level egd batching: the chase
    /// accumulates a whole sweep's equality obligations in its union-find
    /// and applies them to the instance in one combined pass. Returns the
    /// names of the relations that changed; any active delta log is marked
    /// invalidated when a relation changes, exactly like
    /// [`Instance::substitute_nulls`].
    pub fn substitute_nulls_batch(&mut self, map: &HashMap<NullId, Value>) -> Vec<Arc<str>> {
        if map.is_empty() {
            return Vec::new();
        }
        let mut changed = Vec::new();
        for idx in 0..self.store.len() {
            if self.store[idx].1.substitute_with(map) {
                changed.push(self.store[idx].0.clone());
            }
        }
        changed.sort();
        if !changed.is_empty() {
            if let Some(delta) = &mut self.delta {
                delta.invalidated = true;
            }
        }
        changed
    }

    /// Apply a null substitution everywhere. Tuples that become equal after
    /// substitution are merged. Returns the names of the relations that
    /// were rewritten.
    ///
    /// This is the instance-level half of egd enforcement: the chase decides
    /// which labels map to which values (union-find in `grom-chase`) and
    /// calls this to normalize the instance. The lookup is memoized per
    /// label and the rewrite delegates to the surgical
    /// [`Instance::substitute_nulls_batch`] machinery, so unaffected rows
    /// are never touched. Because rewritten tuples may alias tuples a
    /// [`DeltaLog`] recorded earlier, any active delta log is marked
    /// invalidated when a relation changes.
    pub fn substitute_nulls(
        &mut self,
        mut lookup: impl FnMut(NullId) -> Option<Value>,
    ) -> Vec<Arc<str>> {
        // Resolve the closure into a flat map over the labels that actually
        // occur, memoizing so each label is looked up once.
        let mut map: HashMap<NullId, Value> = HashMap::new();
        let mut misses: std::collections::HashSet<NullId> = Default::default();
        for (_, rel) in &self.store {
            for t in rel.iter() {
                for n in t.nulls() {
                    if map.contains_key(&n) || misses.contains(&n) {
                        continue;
                    }
                    match lookup(n) {
                        Some(v) => {
                            map.insert(n, v);
                        }
                        None => {
                            misses.insert(n);
                        }
                    }
                }
            }
        }
        self.substitute_nulls_batch(&map)
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, &id) in &self.names {
            for t in self.store[id.0 as usize].1.iter() {
                writeln!(f, "{name}{t}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: i64) -> Value {
        Value::int(i)
    }

    #[test]
    fn insert_dedup_and_len() {
        let mut inst = Instance::new();
        assert!(inst.add("R", vec![v(1), v(2)]).unwrap());
        assert!(!inst.add("R", vec![v(1), v(2)]).unwrap());
        assert!(inst.add("R", vec![v(1), v(3)]).unwrap());
        assert_eq!(inst.len(), 2);
        assert!(inst.contains_fact("R", &Tuple::new(vec![v(1), v(2)])));
        assert!(!inst.contains_fact("R", &Tuple::new(vec![v(9), v(9)])));
        assert!(!inst.contains_fact("S", &Tuple::new(vec![v(1)])));
    }

    #[test]
    fn rel_ids_are_dense_and_stable() {
        let mut inst = Instance::new();
        inst.add("B", vec![v(1)]).unwrap();
        inst.add("A", vec![v(2)]).unwrap();
        let a = inst.rel_id("A").unwrap();
        let b = inst.rel_id("B").unwrap();
        assert_eq!(b, RelId(0)); // first-insert order, not name order
        assert_eq!(a, RelId(1));
        assert!(inst.rel_id("C").is_none());
        assert_eq!(inst.rel_name(a).as_ref(), "A");
        assert_eq!(inst.relation_by_id(b).len(), 1);
        // Ids survive null substitution.
        inst.add("B", vec![Value::null(0)]).unwrap();
        inst.substitute_nulls(|id| (id == NullId(0)).then(|| v(9)));
        assert_eq!(inst.rel_id("B"), Some(b));
        assert_eq!(inst.relation_by_id(b).len(), 2);
    }

    #[test]
    fn arity_is_fixed_by_first_insert() {
        let mut inst = Instance::new();
        inst.add("R", vec![v(1), v(2)]).unwrap();
        let err = inst.add("R", vec![v(1)]).unwrap_err();
        assert!(matches!(
            err,
            DataError::ArityMismatch {
                expected: 2,
                actual: 1,
                ..
            }
        ));
    }

    #[test]
    fn scan_uses_pattern() {
        let mut inst = Instance::new();
        for i in 0..10 {
            inst.add("R", vec![v(i % 3), v(i)]).unwrap();
        }
        let rel = inst.relation("R").unwrap();
        let hits = rel.scan(&[Some(v(1)), None]);
        assert_eq!(hits.len(), 3); // i = 1, 4, 7
        for t in hits {
            assert_eq!(t.get(0), Some(&v(1)));
        }
        let exact = rel.scan(&[Some(v(2)), Some(v(5))]);
        assert_eq!(exact.len(), 1);
        let none = rel.scan(&[Some(v(7)), None]);
        assert!(none.is_empty());
        let all = rel.scan(&[None, None]);
        assert_eq!(all.len(), 10);
    }

    #[test]
    fn scan_each_stops_early() {
        let mut inst = Instance::new();
        for i in 0..10 {
            inst.add("R", vec![v(i)]).unwrap();
        }
        let rel = inst.relation("R").unwrap();
        let mut seen = 0;
        let completed = rel.scan_each(&[None], &mut |_| {
            seen += 1;
            seen < 3
        });
        assert!(!completed);
        assert_eq!(seen, 3);
    }

    #[test]
    fn composite_keys_index_bound_patterns() {
        let mut inst = Instance::new();
        inst.register_key("R", &[0, 1]);
        for i in 0..100 {
            inst.add("R", vec![v(i % 5), v(i % 7), v(i)]).unwrap();
        }
        let rel = inst.relation("R").unwrap();
        assert!(rel.key_specs().any(|k| k == [0, 1]));
        // The composite bucket is far smaller than either column bucket.
        let pattern = [Some(v(2)), Some(v(3)), None];
        let est = rel.estimate(&pattern);
        assert!(est <= 3, "composite estimate {est} should be tight");
        let hits = rel.scan(&pattern);
        assert!(hits
            .iter()
            .all(|t| t.get(0) == Some(&v(2)) && t.get(1) == Some(&v(3))));
        // Equivalence with a linear scan.
        let linear: Vec<&Tuple> = rel
            .iter()
            .filter(|t| t.get(0) == Some(&v(2)) && t.get(1) == Some(&v(3)))
            .collect();
        assert_eq!(hits, linear);
    }

    #[test]
    fn keys_registered_late_backfill() {
        let mut inst = Instance::new();
        for i in 0..10 {
            inst.add("R", vec![v(i % 2), v(i % 3)]).unwrap();
        }
        inst.register_key("R", &[0, 1]);
        let rel = inst.relation("R").unwrap();
        let hits = rel.scan(&[Some(v(1)), Some(v(2))]);
        let linear: Vec<&Tuple> = rel
            .iter()
            .filter(|t| t.get(0) == Some(&v(1)) && t.get(1) == Some(&v(2)))
            .collect();
        assert_eq!(hits, linear);
        assert!(!hits.is_empty());
    }

    #[test]
    fn degenerate_key_specs_ignored() {
        let mut inst = Instance::new();
        inst.register_key("R", &[1, 1]); // dedups to one column: ignored
        inst.register_key("R", &[0, 5]); // out of range once arity known
        inst.add("R", vec![v(1), v(2)]).unwrap();
        let rel = inst.relation("R").unwrap();
        assert_eq!(rel.key_specs().count(), 0);
        assert!(rel.any_match(&[Some(v(1)), Some(v(2))]));
    }

    #[test]
    fn any_match_agrees_with_scan() {
        let mut inst = Instance::new();
        inst.add("R", vec![v(1), v(2)]).unwrap();
        let rel = inst.relation("R").unwrap();
        assert!(rel.any_match(&[Some(v(1)), None]));
        assert!(!rel.any_match(&[Some(v(2)), None]));
        assert!(rel.any_match(&[None, None]));
    }

    #[test]
    fn facts_iteration_is_deterministic() {
        let mut inst = Instance::new();
        inst.add("B", vec![v(1)]).unwrap();
        inst.add("A", vec![v(2)]).unwrap();
        inst.add("A", vec![v(1)]).unwrap();
        let facts: Vec<String> = inst.facts().map(|f| f.to_string()).collect();
        assert_eq!(facts, vec!["A(2)", "A(1)", "B(1)"]);
    }

    #[test]
    fn union_and_absorb() {
        let mut a = Instance::new();
        a.add("R", vec![v(1)]).unwrap();
        let mut b = Instance::new();
        b.add("R", vec![v(1)]).unwrap();
        b.add("S", vec![v(2)]).unwrap();
        let u = a.union(&b).unwrap();
        assert_eq!(u.len(), 2);
    }

    #[test]
    fn substitute_nulls_merges_tuples() {
        let mut inst = Instance::new();
        inst.add("R", vec![Value::null(0), v(5)]).unwrap();
        inst.add("R", vec![v(1), v(5)]).unwrap();
        inst.add("S", vec![Value::null(7)]).unwrap();
        inst.substitute_nulls(|id| (id == NullId(0)).then(|| v(1)));
        // N0 := 1 makes the two R-tuples collide; they must merge.
        assert_eq!(inst.relation("R").unwrap().len(), 1);
        assert!(inst.contains_fact("R", &Tuple::new(vec![v(1), v(5)])));
        // S untouched.
        assert!(inst.contains_fact("S", &Tuple::new(vec![Value::null(7)])));
    }

    #[test]
    fn substitute_nulls_rebuilds_indexes() {
        let mut inst = Instance::new();
        inst.add("R", vec![Value::null(0), v(5)]).unwrap();
        inst.substitute_nulls(|id| (id == NullId(0)).then(|| v(3)));
        let rel = inst.relation("R").unwrap();
        assert_eq!(rel.scan(&[Some(v(3)), None]).len(), 1);
        assert!(rel.scan(&[Some(Value::null(0)), None]).is_empty());
    }

    #[test]
    fn substitution_is_surgical_and_compaction_reclaims() {
        let mut inst = Instance::new();
        // 200 null-free rows that must never be touched, plus 100 null rows.
        for i in 0..200 {
            inst.add("R", vec![v(i), v(-1)]).unwrap();
        }
        for i in 0..100 {
            inst.add("R", vec![Value::null(i), v(-2)]).unwrap();
        }
        let map: HashMap<NullId, Value> =
            (0..100).map(|i| (NullId(i), v(i as i64 + 1000))).collect();
        let changed = inst.substitute_nulls_batch(&map);
        assert_eq!(changed.len(), 1);
        let rel = inst.relation("R").unwrap();
        assert_eq!(rel.len(), 300);
        for i in 0..100 {
            assert!(inst.contains_fact("R", &Tuple::new(vec![v(i + 1000), v(-2)])));
        }
        // A second, merging substitution drives every rewritten row into an
        // existing one; repeated rounds force compaction and scans stay
        // correct throughout.
        let mut inst2 = Instance::new();
        for round in 0..5u64 {
            for i in 0..50u64 {
                inst2
                    .add("S", vec![Value::null(round * 50 + i), v(i as i64)])
                    .unwrap();
            }
            let map: HashMap<NullId, Value> =
                (0..50u64).map(|i| (NullId(round * 50 + i), v(7))).collect();
            inst2.substitute_nulls_batch(&map);
            // All 50 rows collapse to (7, i) per distinct second column.
            assert_eq!(inst2.relation("S").unwrap().len(), 50);
        }
        let rel = inst2.relation("S").unwrap();
        assert_eq!(rel.scan(&[Some(v(7)), None]).len(), 50);
        assert_eq!(rel.scan(&[Some(v(7)), Some(v(3))]).len(), 1);
        assert_eq!(rel.iter().count(), 50);
    }

    #[test]
    fn substitute_nulls_batch_applies_flat_map_once() {
        let mut inst = Instance::new();
        inst.add("R", vec![Value::null(0), Value::null(2)]).unwrap();
        inst.add("S", vec![Value::null(1)]).unwrap();
        // A flat (pre-resolved) multi-mapping: N0 and N1 in one pass.
        let map: HashMap<NullId, Value> =
            [(NullId(0), v(7)), (NullId(1), v(8))].into_iter().collect();
        let changed = inst.substitute_nulls_batch(&map);
        assert_eq!(changed.len(), 2);
        assert!(inst.contains_fact("R", &Tuple::new(vec![v(7), Value::null(2)])));
        assert!(inst.contains_fact("S", &Tuple::new(vec![v(8)])));
        // An empty map is a no-op and reports no changes.
        assert!(inst.substitute_nulls_batch(&HashMap::new()).is_empty());
    }

    #[test]
    fn max_null_label() {
        let mut inst = Instance::new();
        assert_eq!(inst.max_null_label(), None);
        inst.add("R", vec![Value::null(3), Value::null(11)])
            .unwrap();
        assert_eq!(inst.max_null_label(), Some(11));
    }

    #[test]
    fn intern_and_unintern_round_trip() {
        let mut inst = Instance::new();
        inst.add("R", vec![Value::str("a"), v(1)]).unwrap();
        inst.add("R", vec![Value::str("b"), v(2)]).unwrap();
        inst.add("S", vec![Value::str("a"), Value::null(3)])
            .unwrap();
        inst.register_key("R", &[0, 1]);
        let mut table = SymbolTable::new();
        let interned = inst.intern_strings(&mut table);
        assert_eq!(table.len(), 2); // "a", "b"
        assert_eq!(interned.len(), inst.len());
        // Every Str became a Sym; nulls and ints untouched.
        for f in interned.facts() {
            assert!(f.tuple.values().iter().all(|v| !matches!(v, Value::Str(_))));
        }
        // Key registrations carry over.
        assert!(interned
            .relation("R")
            .unwrap()
            .key_specs()
            .any(|k| k == [0, 1]));
        // Sym-keyed scans work like Str-keyed scans did.
        let sym_a = Value::Sym(table.get("a").unwrap());
        assert_eq!(
            interned
                .relation("R")
                .unwrap()
                .scan(&[Some(sym_a), None])
                .len(),
            1
        );
        // Round trip restores plain strings, byte for byte.
        let back = interned.unintern_strings();
        assert_eq!(back.to_string(), inst.to_string());
        assert_eq!(
            crate::io::canonical_render(&interned),
            crate::io::canonical_render(&inst)
        );
    }

    #[test]
    fn delta_tracking_records_new_tuples_only() {
        let mut inst = Instance::new();
        inst.add("R", vec![v(1)]).unwrap();
        assert!(!inst.is_delta_tracking());
        assert!(inst.take_delta().is_empty());

        inst.begin_delta_tracking();
        inst.add("R", vec![v(1)]).unwrap(); // duplicate: not logged
        inst.add("R", vec![v(2)]).unwrap();
        inst.add("S", vec![v(3)]).unwrap();
        let delta = inst.take_delta();
        assert_eq!(delta.len(), 2);
        let rels: Vec<&str> = delta.relations().map(|(n, _)| n.as_ref()).collect();
        assert_eq!(rels, vec!["R", "S"]);

        // Draining leaves tracking on with a fresh log.
        assert!(inst.is_delta_tracking());
        assert!(inst.take_delta().is_empty());
        inst.add("R", vec![v(4)]).unwrap();
        let delta = inst.end_delta_tracking();
        assert_eq!(delta.len(), 1);
        assert!(!inst.is_delta_tracking());
    }

    #[test]
    fn substitution_invalidates_delta_and_reports_changed_relations() {
        let mut inst = Instance::new();
        inst.add("R", vec![Value::null(0), v(5)]).unwrap();
        inst.add("S", vec![v(1)]).unwrap();
        inst.begin_delta_tracking();
        let changed = inst.substitute_nulls(|id| (id == NullId(0)).then(|| v(3)));
        assert_eq!(changed.len(), 1);
        assert_eq!(changed[0].as_ref(), "R");
        let delta = inst.take_delta();
        assert!(delta.invalidated());
        assert!(!delta.is_empty());
        // A no-op substitution neither changes relations nor invalidates.
        let changed = inst.substitute_nulls(|_| None);
        assert!(changed.is_empty());
        assert!(!inst.take_delta().invalidated());
    }

    #[test]
    fn absorb_delta_replays_log_and_counts_new() {
        let mut src = Instance::new();
        src.begin_delta_tracking();
        src.add("R", vec![v(1)]).unwrap();
        src.add("S", vec![v(2)]).unwrap();
        let log = src.take_delta();

        let mut dst = Instance::new();
        dst.add("R", vec![v(1)]).unwrap(); // already present: not counted
        dst.begin_delta_tracking();
        assert_eq!(dst.absorb_delta(&log).unwrap(), 1);
        assert!(dst.contains_fact("S", &Tuple::new(vec![v(2)])));
        // The merge is itself tracked, so it can be re-routed downstream.
        assert_eq!(dst.take_delta().len(), 1);
    }

    #[test]
    fn delta_log_absorb_appends_and_keeps_invalidation() {
        let mut a = DeltaLog::default();
        let mut b = DeltaLog::default();
        a.record(&Arc::from("R"), Tuple::new(vec![v(1)]));
        b.record(&Arc::from("R"), Tuple::new(vec![v(2)]));
        b.record(&Arc::from("S"), Tuple::new(vec![v(3)]));
        a.absorb(&b);
        assert_eq!(a.len(), 3);
        assert!(!a.invalidated());
        b.invalidated = true;
        a.absorb(&b);
        assert!(a.invalidated());
    }

    #[test]
    fn from_facts_roundtrip() {
        let facts = vec![
            Fact::new("R", vec![v(1), v(2)]),
            Fact::new("R", vec![v(1), v(2)]),
        ];
        let inst = Instance::from_facts(facts).unwrap();
        assert_eq!(inst.len(), 1);
    }

    #[test]
    fn cursor_before_last_splits_trailing_rows() {
        let mut inst = Instance::new();
        for i in 0..5 {
            inst.add("R", vec![v(i)]).unwrap();
        }
        let rel = inst.relation("R").unwrap();
        assert_eq!(rel.cursor_before_last(0), rel.frontier());
        assert_eq!(rel.cursor_before_last(2), 3);
        assert_eq!(rel.cursor_before_last(5), 0);
        assert_eq!(rel.cursor_before_last(99), 0);
        // Span::AtLeast of the cursor covers exactly the trailing n rows.
        let c = rel.cursor_before_last(2);
        let mut newer = Vec::new();
        rel.scan_each_v(&[None], Span::AtLeast(c), &mut |t| {
            newer.push(t.clone());
            true
        });
        assert_eq!(
            newer,
            vec![Tuple::new(vec![v(3)]), Tuple::new(vec![v(4)])]
        );
    }

    #[test]
    fn cursor_before_last_counts_live_rows_across_tombstones() {
        let mut inst = Instance::new();
        inst.add("R", vec![Value::null(0)]).unwrap(); // slot 0, tombstoned
        inst.add("R", vec![v(10)]).unwrap(); // slot 1
        inst.add("R", vec![v(20)]).unwrap(); // slot 2
        // Substitution tombstones slot 0 and re-appends the rewrite at slot 3.
        inst.substitute_nulls(|id| (id == NullId(0)).then(|| v(30)));
        let rel = inst.relation("R").unwrap();
        assert_eq!(rel.len(), 3);
        // The trailing 2 live rows are slots 2 and 3; the cursor must skip
        // the tombstone at slot 0 when counting backward.
        let c = rel.cursor_before_last(2);
        assert_eq!(c, 2);
        let mut older = Vec::new();
        rel.scan_each_v(&[None], Span::Below(c), &mut |t| {
            older.push(t.clone());
            true
        });
        assert_eq!(older, vec![Tuple::new(vec![v(10)])]);
    }

    #[test]
    fn versioned_scan_partitions_bucket_and_full_paths() {
        let mut inst = Instance::new();
        for i in 0..10 {
            inst.add("R", vec![v(i % 3), v(i)]).unwrap();
        }
        let rel = inst.relation("R").unwrap();
        let c = rel.cursor_before_last(4); // new half: i = 6..10
        for pattern in [&[Some(v(0)), None][..], &[None, None][..]] {
            let mut old = Vec::new();
            rel.scan_each_v(pattern, Span::Below(c), &mut |t| {
                old.push(t.clone());
                true
            });
            let mut new = Vec::new();
            rel.scan_each_v(pattern, Span::AtLeast(c), &mut |t| {
                new.push(t.clone());
                true
            });
            // The halves are disjoint and their union is the full scan.
            let mut all = Vec::new();
            rel.scan_each_v(pattern, Span::All, &mut |t| {
                all.push(t.clone());
                true
            });
            let mut union = old.clone();
            union.extend(new.iter().cloned());
            assert_eq!(union, all);
            assert!(new
                .iter()
                .all(|t| t.get(1).is_some_and(|x| *x >= v(6))));
            assert!(old
                .iter()
                .all(|t| t.get(1).is_some_and(|x| *x < v(6))));
        }
    }

    #[test]
    fn versioned_estimate_never_undercounts() {
        let mut inst = Instance::new();
        for i in 0..12 {
            inst.add("R", vec![v(i % 4), v(i)]).unwrap();
        }
        let rel = inst.relation("R").unwrap();
        let c = rel.cursor_before_last(5);
        for pattern in [&[Some(v(1)), None][..], &[None, None][..]] {
            for span in [Span::All, Span::Below(c), Span::AtLeast(c)] {
                let mut count = 0usize;
                rel.scan_each_v(pattern, span, &mut |_| {
                    count += 1;
                    true
                });
                assert!(
                    rel.estimate_v(pattern, span) >= count,
                    "estimate under span {span:?} undercounts"
                );
            }
        }
        assert_eq!(rel.estimate_v(&[None, None], Span::AtLeast(c)), 5);
        assert_eq!(rel.estimate_v(&[None, None], Span::Below(c)), 7);
    }
}
