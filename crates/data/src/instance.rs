//! In-memory database instances.
//!
//! An [`Instance`] maps relation names to [`Relation`]s: deduplicated,
//! insertion-ordered tuple sets with eager per-column hash indexes. The
//! indexes are what make the nested-loop joins of `grom-engine` and the
//! violation search of `grom-chase` tolerable on instances with hundreds of
//! thousands of tuples.
//!
//! Instances are *schema-less* at this layer: the first tuple inserted into
//! a relation fixes its arity, and later inserts are checked against it.
//! Typed validation against a [`crate::schema::Schema`] is performed by the
//! scenario loader in `grom` (the core crate), which knows which schema an
//! instance is supposed to populate.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;

use crate::error::DataError;
use crate::tuple::{Fact, Tuple};
use crate::value::{NullId, Value};

/// One relation: an insertion-ordered set of tuples plus per-column indexes.
#[derive(Debug, Clone, Default)]
pub struct Relation {
    /// Tuples in insertion order. Never contains duplicates.
    rows: Vec<Tuple>,
    /// Tuple → position in `rows`, for O(1) membership tests.
    positions: HashMap<Tuple, u32>,
    /// `indexes[c][v]` = row ids whose column `c` holds value `v`.
    indexes: Vec<HashMap<Value, Vec<u32>>>,
    arity: Option<usize>,
}

impl Relation {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The arity fixed by the first insert, if any tuple was ever inserted.
    pub fn arity(&self) -> Option<usize> {
        self.arity
    }

    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.positions.contains_key(tuple)
    }

    /// Insert a tuple. Returns `Ok(true)` if it was new, `Ok(false)` if it
    /// was already present, and an arity error if it does not match the
    /// relation's fixed width.
    fn insert(&mut self, relation: &Arc<str>, tuple: Tuple) -> Result<bool, DataError> {
        match self.arity {
            None => {
                let a = tuple.arity();
                self.arity = Some(a);
                self.indexes = vec![HashMap::new(); a];
            }
            Some(a) if a != tuple.arity() => {
                return Err(DataError::ArityMismatch {
                    relation: relation.clone(),
                    expected: a,
                    actual: tuple.arity(),
                });
            }
            Some(_) => {}
        }
        if self.positions.contains_key(&tuple) {
            return Ok(false);
        }
        let row_id = self.rows.len() as u32;
        for (c, v) in tuple.values().iter().enumerate() {
            self.indexes[c].entry(v.clone()).or_default().push(row_id);
        }
        self.positions.insert(tuple.clone(), row_id);
        self.rows.push(tuple);
        Ok(true)
    }

    /// Iterate over tuples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.rows.iter()
    }

    /// Row ids whose column `col` equals `value` (possibly empty).
    fn rows_with(&self, col: usize, value: &Value) -> &[u32] {
        self.indexes
            .get(col)
            .and_then(|ix| ix.get(value))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Tuples matching a pattern: `pattern[i] = Some(v)` requires column `i`
    /// to equal `v`; `None` leaves it unconstrained.
    ///
    /// Uses the most selective available column index; falls back to a full
    /// scan when the pattern is entirely unbound.
    pub fn scan<'a>(&'a self, pattern: &[Option<Value>]) -> Vec<&'a Tuple> {
        debug_assert_eq!(Some(pattern.len()), self.arity.or(Some(pattern.len())));
        // Pick the bound column with the fewest candidate rows.
        let best = pattern
            .iter()
            .enumerate()
            .filter_map(|(c, slot)| slot.as_ref().map(|v| (c, v, self.rows_with(c, v).len())))
            .min_by_key(|&(_, _, n)| n);
        let matches = |t: &Tuple| {
            pattern
                .iter()
                .zip(t.values())
                .all(|(slot, v)| slot.as_ref().is_none_or(|s| s == v))
        };
        match best {
            Some((c, v, _)) => self
                .rows_with(c, v)
                .iter()
                .map(|&r| &self.rows[r as usize])
                .filter(|t| matches(t))
                .collect(),
            None => self.rows.iter().filter(|t| matches(t)).collect(),
        }
    }

    /// An upper bound on the number of tuples matching `pattern`, computed
    /// from the column indexes without touching any tuple: the smallest
    /// index bucket among the bound columns, or the relation size when the
    /// pattern is entirely unbound. The join planner in `grom-engine` uses
    /// this as its cardinality estimate.
    pub fn estimate(&self, pattern: &[Option<Value>]) -> usize {
        pattern
            .iter()
            .enumerate()
            .filter_map(|(c, slot)| slot.as_ref().map(|v| self.rows_with(c, v).len()))
            .min()
            .unwrap_or_else(|| self.len())
    }

    /// Does any tuple match the pattern? Cheaper than [`Relation::scan`]
    /// when only existence matters (negated literals, denial checks).
    pub fn any_match(&self, pattern: &[Option<Value>]) -> bool {
        let best = pattern
            .iter()
            .enumerate()
            .filter_map(|(c, slot)| slot.as_ref().map(|v| (c, v, self.rows_with(c, v).len())))
            .min_by_key(|&(_, _, n)| n);
        let matches = |t: &Tuple| {
            pattern
                .iter()
                .zip(t.values())
                .all(|(slot, v)| slot.as_ref().is_none_or(|s| s == v))
        };
        match best {
            Some((c, v, _)) => self
                .rows_with(c, v)
                .iter()
                .any(|&r| matches(&self.rows[r as usize])),
            None => self.rows.iter().any(matches),
        }
    }
}

/// A log of tuples inserted into an [`Instance`] while delta tracking is
/// enabled, grouped by relation.
///
/// This is the bookkeeping half of the delta-driven (semi-naive) chase
/// scheduler in `grom-chase`: after a batch of repairs, the scheduler
/// drains the log with [`Instance::take_delta`] and feeds the new tuples —
/// and only those — back into premise evaluation. Null substitution
/// rewrites tuples in place, so [`Instance::substitute_nulls`] marks the
/// log *invalidated* instead of trying to track the rewrite; consumers
/// must fall back to a full rescan.
#[derive(Debug, Clone, Default)]
pub struct DeltaLog {
    tuples: BTreeMap<Arc<str>, Vec<Tuple>>,
    invalidated: bool,
}

impl DeltaLog {
    /// No new tuples and not invalidated?
    pub fn is_empty(&self) -> bool {
        !self.invalidated && self.tuples.is_empty()
    }

    /// Total number of logged tuples.
    pub fn len(&self) -> usize {
        self.tuples.values().map(Vec::len).sum()
    }

    /// Was the log invalidated by a null substitution? Logged tuples may be
    /// stale; consumers must fall back to a full rescan.
    pub fn invalidated(&self) -> bool {
        self.invalidated
    }

    /// The logged tuples, grouped by relation (sorted by name).
    pub fn relations(&self) -> impl Iterator<Item = (&Arc<str>, &[Tuple])> {
        self.tuples.iter().map(|(name, ts)| (name, ts.as_slice()))
    }

    fn record(&mut self, relation: &Arc<str>, tuple: Tuple) {
        self.tuples.entry(relation.clone()).or_default().push(tuple);
    }

    /// Append all of `other`'s tuples to this log, preserving per-relation
    /// order. Invalidation is sticky: absorbing an invalidated log marks
    /// this one invalidated too. The parallel chase executor uses this to
    /// fold one worker's per-dependency logs into its sweep output.
    pub fn absorb(&mut self, other: &DeltaLog) {
        for (rel, tuples) in other.relations() {
            self.tuples
                .entry(rel.clone())
                .or_default()
                .extend(tuples.iter().cloned());
        }
        self.invalidated |= other.invalidated;
    }
}

/// A database instance: relation name → [`Relation`].
#[derive(Debug, Clone, Default)]
pub struct Instance {
    relations: BTreeMap<Arc<str>, Relation>,
    /// Delta log, present only while tracking is enabled.
    delta: Option<DeltaLog>,
}

impl Instance {
    pub fn new() -> Self {
        Self::default()
    }

    /// Build an instance from an iterator of facts.
    pub fn from_facts(facts: impl IntoIterator<Item = Fact>) -> Result<Self, DataError> {
        let mut inst = Instance::new();
        for f in facts {
            inst.insert_fact(f)?;
        }
        Ok(inst)
    }

    /// Insert a fact; returns whether it was new.
    pub fn insert_fact(&mut self, fact: Fact) -> Result<bool, DataError> {
        self.insert(&fact.relation, fact.tuple)
    }

    /// Insert a tuple into `relation`; returns whether it was new.
    pub fn insert(&mut self, relation: &Arc<str>, tuple: Tuple) -> Result<bool, DataError> {
        let rel = self.relations.entry(relation.clone()).or_default();
        let Some(delta) = &mut self.delta else {
            return rel.insert(relation, tuple);
        };
        // With tracking on, duplicates are the common case on the chase's
        // hot path (re-derivations); skip the log clone for them.
        if rel.contains(&tuple) {
            return Ok(false);
        }
        let logged = tuple.clone();
        let new = rel.insert(relation, tuple)?;
        if new {
            delta.record(relation, logged);
        }
        Ok(new)
    }

    /// Start recording newly inserted tuples into a [`DeltaLog`]. Clears any
    /// previous log. Tracking stays on until [`Instance::end_delta_tracking`].
    pub fn begin_delta_tracking(&mut self) {
        self.delta = Some(DeltaLog::default());
    }

    /// Drain the current delta log, leaving tracking enabled with a fresh
    /// empty log. Returns an empty log when tracking is off.
    pub fn take_delta(&mut self) -> DeltaLog {
        match &mut self.delta {
            Some(delta) => std::mem::take(delta),
            None => DeltaLog::default(),
        }
    }

    /// Stop delta tracking and return the final log (empty if tracking was
    /// never enabled).
    pub fn end_delta_tracking(&mut self) -> DeltaLog {
        self.delta.take().unwrap_or_default()
    }

    /// Is delta tracking currently enabled?
    pub fn is_delta_tracking(&self) -> bool {
        self.delta.is_some()
    }

    /// Convenience insert with a `&str` relation name and raw values.
    pub fn add(
        &mut self,
        relation: impl AsRef<str>,
        values: Vec<Value>,
    ) -> Result<bool, DataError> {
        self.insert(&Arc::from(relation.as_ref()), Tuple::new(values))
    }

    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name)
    }

    /// Tuples of `name`, or an empty iterator if the relation is absent.
    pub fn tuples(&self, name: &str) -> impl Iterator<Item = &Tuple> {
        self.relations
            .get(name)
            .into_iter()
            .flat_map(Relation::iter)
    }

    pub fn contains_fact(&self, relation: &str, tuple: &Tuple) -> bool {
        self.relations
            .get(relation)
            .is_some_and(|r| r.contains(tuple))
    }

    /// Relation names present in this instance (sorted).
    pub fn relation_names(&self) -> impl Iterator<Item = &Arc<str>> {
        self.relations.keys()
    }

    /// All facts, grouped by relation (sorted) and then insertion order.
    pub fn facts(&self) -> impl Iterator<Item = Fact> + '_ {
        self.relations.iter().flat_map(|(name, rel)| {
            rel.iter().map(move |t| Fact {
                relation: name.clone(),
                tuple: t.clone(),
            })
        })
    }

    /// Total number of tuples across all relations.
    pub fn len(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Merge all facts of `other` into `self`.
    pub fn absorb(&mut self, other: &Instance) -> Result<(), DataError> {
        for (name, rel) in &other.relations {
            for t in rel.iter() {
                self.insert(name, t.clone())?;
            }
        }
        Ok(())
    }

    /// The union of two instances as a new instance.
    pub fn union(&self, other: &Instance) -> Result<Instance, DataError> {
        let mut out = self.clone();
        out.absorb(other)?;
        Ok(out)
    }

    /// Insert every tuple of a [`DeltaLog`] into this instance, in the
    /// log's deterministic order (relations sorted by name, tuples in
    /// insertion order). Returns the number of tuples that were new.
    ///
    /// This is the sweep-barrier merge of the parallel chase executor:
    /// workers buffer insertions against an immutable snapshot, and the
    /// coordinator folds the buffers back in job order so the merged
    /// instance is identical across runs regardless of thread scheduling.
    pub fn absorb_delta(&mut self, delta: &DeltaLog) -> Result<usize, DataError> {
        let mut added = 0;
        for (rel, tuples) in delta.relations() {
            for t in tuples {
                if self.insert(rel, t.clone())? {
                    added += 1;
                }
            }
        }
        Ok(added)
    }

    /// The largest null label occurring anywhere, if any. Chase runs over an
    /// instance that already contains nulls start their generator above it.
    pub fn max_null_label(&self) -> Option<u64> {
        self.relations
            .values()
            .flat_map(|r| r.iter())
            .flat_map(|t| t.nulls())
            .map(|NullId(l)| l)
            .max()
    }

    /// Apply a *fully resolved* multi-mapping null substitution in one
    /// pass: `map` sends each mapped label directly to its final value (no
    /// chains — the caller collapses them once, e.g. with the chase's
    /// `NullMap::flatten`), so every occurrence costs a single hash lookup
    /// instead of a chain walk.
    ///
    /// This is the entry point of sweep-level egd batching: the chase
    /// accumulates a whole sweep's equality obligations in its union-find
    /// and applies them to the instance in one combined pass. Semantics are
    /// otherwise identical to [`Instance::substitute_nulls`], including the
    /// changed-relation report and delta-log invalidation.
    pub fn substitute_nulls_batch(&mut self, map: &HashMap<NullId, Value>) -> Vec<Arc<str>> {
        if map.is_empty() {
            return Vec::new();
        }
        self.substitute_nulls(|id| map.get(&id).cloned())
    }

    /// Apply a null substitution everywhere, rebuilding every touched
    /// relation. Tuples that become equal after substitution are merged.
    /// Returns the names of the relations that were rewritten.
    ///
    /// This is the instance-level half of egd enforcement: the chase decides
    /// which labels map to which values (union-find in `grom-chase`) and
    /// calls this to normalize the instance. Because rewritten tuples may
    /// alias tuples a [`DeltaLog`] recorded earlier, any active delta log is
    /// marked invalidated when a relation changes. Callers holding a
    /// pre-flattened mapping should prefer the one-pass
    /// [`Instance::substitute_nulls_batch`].
    pub fn substitute_nulls(
        &mut self,
        mut lookup: impl FnMut(NullId) -> Option<Value>,
    ) -> Vec<Arc<str>> {
        let names: Vec<Arc<str>> = self.relations.keys().cloned().collect();
        let mut changed = Vec::new();
        for name in names {
            let rel = &self.relations[&name];
            // Fast path: skip relations where nothing changes.
            let needs_rewrite = rel.iter().any(|t| t.nulls().any(|id| lookup(id).is_some()));
            if !needs_rewrite {
                continue;
            }
            let mut rebuilt = Relation::new();
            for t in rel.iter() {
                let (nt, _) = t.substitute_nulls(&mut lookup);
                rebuilt
                    .insert(&name, nt)
                    .expect("substitution preserves arity");
            }
            self.relations.insert(name.clone(), rebuilt);
            changed.push(name);
        }
        if !changed.is_empty() {
            if let Some(delta) = &mut self.delta {
                delta.invalidated = true;
            }
        }
        changed
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, rel) in &self.relations {
            for t in rel.iter() {
                writeln!(f, "{name}{t}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: i64) -> Value {
        Value::int(i)
    }

    #[test]
    fn insert_dedup_and_len() {
        let mut inst = Instance::new();
        assert!(inst.add("R", vec![v(1), v(2)]).unwrap());
        assert!(!inst.add("R", vec![v(1), v(2)]).unwrap());
        assert!(inst.add("R", vec![v(1), v(3)]).unwrap());
        assert_eq!(inst.len(), 2);
        assert!(inst.contains_fact("R", &Tuple::new(vec![v(1), v(2)])));
        assert!(!inst.contains_fact("R", &Tuple::new(vec![v(9), v(9)])));
        assert!(!inst.contains_fact("S", &Tuple::new(vec![v(1)])));
    }

    #[test]
    fn arity_is_fixed_by_first_insert() {
        let mut inst = Instance::new();
        inst.add("R", vec![v(1), v(2)]).unwrap();
        let err = inst.add("R", vec![v(1)]).unwrap_err();
        assert!(matches!(
            err,
            DataError::ArityMismatch {
                expected: 2,
                actual: 1,
                ..
            }
        ));
    }

    #[test]
    fn scan_uses_pattern() {
        let mut inst = Instance::new();
        for i in 0..10 {
            inst.add("R", vec![v(i % 3), v(i)]).unwrap();
        }
        let rel = inst.relation("R").unwrap();
        let hits = rel.scan(&[Some(v(1)), None]);
        assert_eq!(hits.len(), 3); // i = 1, 4, 7
        for t in hits {
            assert_eq!(t.get(0), Some(&v(1)));
        }
        let exact = rel.scan(&[Some(v(2)), Some(v(5))]);
        assert_eq!(exact.len(), 1);
        let none = rel.scan(&[Some(v(7)), None]);
        assert!(none.is_empty());
        let all = rel.scan(&[None, None]);
        assert_eq!(all.len(), 10);
    }

    #[test]
    fn any_match_agrees_with_scan() {
        let mut inst = Instance::new();
        inst.add("R", vec![v(1), v(2)]).unwrap();
        let rel = inst.relation("R").unwrap();
        assert!(rel.any_match(&[Some(v(1)), None]));
        assert!(!rel.any_match(&[Some(v(2)), None]));
        assert!(rel.any_match(&[None, None]));
    }

    #[test]
    fn facts_iteration_is_deterministic() {
        let mut inst = Instance::new();
        inst.add("B", vec![v(1)]).unwrap();
        inst.add("A", vec![v(2)]).unwrap();
        inst.add("A", vec![v(1)]).unwrap();
        let facts: Vec<String> = inst.facts().map(|f| f.to_string()).collect();
        assert_eq!(facts, vec!["A(2)", "A(1)", "B(1)"]);
    }

    #[test]
    fn union_and_absorb() {
        let mut a = Instance::new();
        a.add("R", vec![v(1)]).unwrap();
        let mut b = Instance::new();
        b.add("R", vec![v(1)]).unwrap();
        b.add("S", vec![v(2)]).unwrap();
        let u = a.union(&b).unwrap();
        assert_eq!(u.len(), 2);
    }

    #[test]
    fn substitute_nulls_merges_tuples() {
        let mut inst = Instance::new();
        inst.add("R", vec![Value::null(0), v(5)]).unwrap();
        inst.add("R", vec![v(1), v(5)]).unwrap();
        inst.add("S", vec![Value::null(7)]).unwrap();
        inst.substitute_nulls(|id| (id == NullId(0)).then(|| v(1)));
        // N0 := 1 makes the two R-tuples collide; they must merge.
        assert_eq!(inst.relation("R").unwrap().len(), 1);
        assert!(inst.contains_fact("R", &Tuple::new(vec![v(1), v(5)])));
        // S untouched.
        assert!(inst.contains_fact("S", &Tuple::new(vec![Value::null(7)])));
    }

    #[test]
    fn substitute_nulls_rebuilds_indexes() {
        let mut inst = Instance::new();
        inst.add("R", vec![Value::null(0), v(5)]).unwrap();
        inst.substitute_nulls(|id| (id == NullId(0)).then(|| v(3)));
        let rel = inst.relation("R").unwrap();
        assert_eq!(rel.scan(&[Some(v(3)), None]).len(), 1);
        assert!(rel.scan(&[Some(Value::null(0)), None]).is_empty());
    }

    #[test]
    fn substitute_nulls_batch_applies_flat_map_once() {
        let mut inst = Instance::new();
        inst.add("R", vec![Value::null(0), Value::null(2)]).unwrap();
        inst.add("S", vec![Value::null(1)]).unwrap();
        // A flat (pre-resolved) multi-mapping: N0 and N1 in one pass.
        let map: HashMap<NullId, Value> =
            [(NullId(0), v(7)), (NullId(1), v(8))].into_iter().collect();
        let changed = inst.substitute_nulls_batch(&map);
        assert_eq!(changed.len(), 2);
        assert!(inst.contains_fact("R", &Tuple::new(vec![v(7), Value::null(2)])));
        assert!(inst.contains_fact("S", &Tuple::new(vec![v(8)])));
        // An empty map is a no-op and reports no changes.
        assert!(inst.substitute_nulls_batch(&HashMap::new()).is_empty());
    }

    #[test]
    fn max_null_label() {
        let mut inst = Instance::new();
        assert_eq!(inst.max_null_label(), None);
        inst.add("R", vec![Value::null(3), Value::null(11)])
            .unwrap();
        assert_eq!(inst.max_null_label(), Some(11));
    }

    #[test]
    fn delta_tracking_records_new_tuples_only() {
        let mut inst = Instance::new();
        inst.add("R", vec![v(1)]).unwrap();
        assert!(!inst.is_delta_tracking());
        assert!(inst.take_delta().is_empty());

        inst.begin_delta_tracking();
        inst.add("R", vec![v(1)]).unwrap(); // duplicate: not logged
        inst.add("R", vec![v(2)]).unwrap();
        inst.add("S", vec![v(3)]).unwrap();
        let delta = inst.take_delta();
        assert_eq!(delta.len(), 2);
        let rels: Vec<&str> = delta.relations().map(|(n, _)| n.as_ref()).collect();
        assert_eq!(rels, vec!["R", "S"]);

        // Draining leaves tracking on with a fresh log.
        assert!(inst.is_delta_tracking());
        assert!(inst.take_delta().is_empty());
        inst.add("R", vec![v(4)]).unwrap();
        let delta = inst.end_delta_tracking();
        assert_eq!(delta.len(), 1);
        assert!(!inst.is_delta_tracking());
    }

    #[test]
    fn substitution_invalidates_delta_and_reports_changed_relations() {
        let mut inst = Instance::new();
        inst.add("R", vec![Value::null(0), v(5)]).unwrap();
        inst.add("S", vec![v(1)]).unwrap();
        inst.begin_delta_tracking();
        let changed = inst.substitute_nulls(|id| (id == NullId(0)).then(|| v(3)));
        assert_eq!(changed.len(), 1);
        assert_eq!(changed[0].as_ref(), "R");
        let delta = inst.take_delta();
        assert!(delta.invalidated());
        assert!(!delta.is_empty());
        // A no-op substitution neither changes relations nor invalidates.
        let changed = inst.substitute_nulls(|_| None);
        assert!(changed.is_empty());
        assert!(!inst.take_delta().invalidated());
    }

    #[test]
    fn absorb_delta_replays_log_and_counts_new() {
        let mut src = Instance::new();
        src.begin_delta_tracking();
        src.add("R", vec![v(1)]).unwrap();
        src.add("S", vec![v(2)]).unwrap();
        let log = src.take_delta();

        let mut dst = Instance::new();
        dst.add("R", vec![v(1)]).unwrap(); // already present: not counted
        dst.begin_delta_tracking();
        assert_eq!(dst.absorb_delta(&log).unwrap(), 1);
        assert!(dst.contains_fact("S", &Tuple::new(vec![v(2)])));
        // The merge is itself tracked, so it can be re-routed downstream.
        assert_eq!(dst.take_delta().len(), 1);
    }

    #[test]
    fn delta_log_absorb_appends_and_keeps_invalidation() {
        let mut a = DeltaLog::default();
        let mut b = DeltaLog::default();
        a.record(&Arc::from("R"), Tuple::new(vec![v(1)]));
        b.record(&Arc::from("R"), Tuple::new(vec![v(2)]));
        b.record(&Arc::from("S"), Tuple::new(vec![v(3)]));
        a.absorb(&b);
        assert_eq!(a.len(), 3);
        assert!(!a.invalidated());
        b.invalidated = true;
        a.absorb(&b);
        assert!(a.invalidated());
    }

    #[test]
    fn from_facts_roundtrip() {
        let facts = vec![
            Fact::new("R", vec![v(1), v(2)]),
            Fact::new("R", vec![v(1), v(2)]),
        ];
        let inst = Instance::from_facts(facts).unwrap();
        assert_eq!(inst.len(), 1);
    }
}
