//! # grom-data — the relational substrate of GROM
//!
//! This crate implements the "physical databases" of the GROM architecture
//! (Figure 2 of the paper): typed relational schemas, tuples over a small
//! value domain extended with *labeled nulls*, and in-memory instances with
//! per-column hash indexes.
//!
//! Everything above this crate (the mapping language, the evaluation engine,
//! the chase and the rewriter) manipulates these objects:
//!
//! * [`Value`] — constants (`Int`, `Str`, `Bool`) and labeled nulls
//!   ([`NullId`]), the carriers of incomplete information created by the
//!   chase when it witnesses existential quantifiers.
//! * [`Schema`] / [`RelationSchema`] — named relations with typed columns.
//! * [`Tuple`] and [`Fact`] — rows, and rows tagged with their relation.
//! * [`Instance`] — a deduplicated, insertion-ordered set of facts with
//!   per-column secondary indexes, plus the null-substitution operation the
//!   egd chase relies on.
//!
//! The design goals, in order: deterministic iteration (tests and the greedy
//! ded chase must be reproducible), cheap cloning of values (`Arc<str>`
//! strings), and fast bound-column lookups during joins.

pub mod error;
pub mod hash;
pub mod instance;
pub mod io;
pub mod schema;
pub mod symbol;
pub mod tuple;
pub mod value;

pub use error::{DataError, GromError};
pub use hash::{FxBuildHasher, FxHashMap, FxHasher};
pub use instance::{DeltaLog, Instance, RelId, Relation, Span};
pub use io::{canonical_render, read_instance, write_instance, ReadError};
pub use schema::{ColumnSchema, ColumnType, RelationSchema, Schema};
pub use symbol::{Sym, SymbolTable};
pub use tuple::{Fact, Tuple};
pub use value::{NullGenerator, NullId, StridedNullGenerator, Value};
