//! The value domain: constants plus labeled nulls.
//!
//! GROM instances are *naive tables* in the data-exchange sense (Fagin,
//! Kolaitis, Miller, Popa — "Data Exchange: Semantics and Query Answering"):
//! ordinary constants mixed with **labeled nulls** `N_0, N_1, …` that stand
//! for unknown values invented by the chase. Two labeled nulls are equal iff
//! they carry the same label; the egd chase merges labels via
//! [`crate::instance::Instance::substitute_nulls`].

use std::fmt;
use std::sync::Arc;

use crate::symbol::Sym;

/// The label of a labeled null. Labels are allocated by a [`NullGenerator`]
/// and are globally unique within one chase run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NullId(pub u64);

impl fmt::Display for NullId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

/// A database value: a typed constant or a labeled null.
///
/// Strings are reference-counted so that tuples can be cloned cheaply during
/// joins and chase steps.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// 64-bit signed integer constant.
    Int(i64),
    /// String constant.
    Str(Arc<str>),
    /// An **interned** string constant: compares and hashes by its dense
    /// `u32` id (see [`crate::symbol::SymbolTable`]). The pipeline interns
    /// all string constants of one run together, so `Sym` and `Str` never
    /// mix inside one database; renderings are identical to the equivalent
    /// `Str`.
    Sym(Sym),
    /// Boolean constant.
    Bool(bool),
    /// A labeled null `N_k` standing for an unknown value.
    Null(NullId),
}

impl Value {
    /// Build a string constant.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Build an integer constant.
    pub fn int(i: i64) -> Self {
        Value::Int(i)
    }

    /// Build a boolean constant.
    pub fn bool(b: bool) -> Self {
        Value::Bool(b)
    }

    /// Build a labeled null from a raw label.
    pub fn null(id: u64) -> Self {
        Value::Null(NullId(id))
    }

    /// Is this a labeled null?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null(_))
    }

    /// Is this a constant (i.e. not a labeled null)?
    pub fn is_constant(&self) -> bool {
        !self.is_null()
    }

    /// The null label, if this is a null.
    pub fn as_null(&self) -> Option<NullId> {
        match self {
            Value::Null(id) => Some(*id),
            _ => None,
        }
    }

    /// The integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The string payload, if this is a `Str` or an interned `Sym`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            Value::Sym(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Resolve an interned symbol back to a plain string constant; every
    /// other value is returned unchanged. The pipeline applies this to the
    /// extracted target so downstream consumers (validation, rendering,
    /// user code) only ever see `Str` constants.
    pub fn unintern(&self) -> Value {
        match self {
            Value::Sym(s) => Value::Str(s.text().clone()),
            other => other.clone(),
        }
    }

    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Compare two values under the *order semantics of comparison atoms*.
    ///
    /// Comparisons in GROM premises (`rating >= 4`, …) are only meaningful
    /// between constants of the same type; any comparison involving a
    /// labeled null or constants of different types is *undefined* and the
    /// comparison atom simply does not match. Returns `None` in those cases.
    pub fn try_cmp(&self, other: &Value) -> Option<std::cmp::Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            // Interned and plain strings order by text, so comparison atoms
            // behave identically with interning on or off.
            (Value::Sym(a), Value::Sym(b)) => Some(a.as_str().cmp(b.as_str())),
            (Value::Str(a), Value::Sym(b)) => Some(a.as_ref().cmp(b.as_str())),
            (Value::Sym(a), Value::Str(b)) => Some(a.as_str().cmp(b.as_ref())),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write_quoted(f, s),
            Value::Sym(s) => write_quoted(f, s.as_str()),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Null(id) => write!(f, "{id}"),
        }
    }
}

/// Quote a string constant, escaping embedded quotes and backslashes so
/// the rendered form survives a `write_instance`/`read_instance` round
/// trip (checkpoints embed instances as text).
fn write_quoted(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    use fmt::Write as _;
    f.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            c => f.write_char(c)?,
        }
    }
    f.write_char('"')
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s.as_str()))
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

/// Allocator for fresh labeled nulls.
///
/// The chase engine owns one generator per run so that every invented null
/// is distinct. Generators are deliberately *not* global: reproducibility of
/// a chase run must not depend on what other runs executed before it.
#[derive(Debug, Default, Clone)]
pub struct NullGenerator {
    next: u64,
}

impl NullGenerator {
    /// A generator starting at label 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// A generator whose first label is `start`; used when extending an
    /// instance that already contains nulls.
    pub fn starting_at(start: u64) -> Self {
        Self { next: start }
    }

    /// Allocate a fresh labeled null.
    pub fn fresh(&mut self) -> Value {
        let id = self.next;
        self.next += 1;
        Value::Null(NullId(id))
    }

    /// The label the next call to [`NullGenerator::fresh`] will use.
    pub fn peek_next(&self) -> u64 {
        self.next
    }

    /// Move the generator forward so its next label is at least `next`.
    /// Never moves backwards. The parallel chase executor uses this to
    /// re-synchronize the run-level generator after a sweep in which
    /// workers allocated from disjoint strided ranges.
    pub fn advance_to(&mut self, next: u64) {
        self.next = self.next.max(next);
    }
}

/// Allocator for fresh labeled nulls drawn from a strided (residue-class)
/// label range: worker `offset` of a pool of `stride` workers allocates the
/// labels `start + offset`, `start + offset + stride`, `start + offset +
/// 2·stride`, …
///
/// Distinct offsets under the same `(start, stride)` produce disjoint label
/// sets of unbounded size, so parallel chase workers can invent nulls
/// without coordination and without a cap on per-worker allocations; the
/// ranges are a deterministic function of the job index, keeping runs
/// reproducible regardless of thread scheduling.
#[derive(Debug, Clone)]
pub struct StridedNullGenerator {
    next: u64,
    stride: u64,
    last: Option<u64>,
}

impl StridedNullGenerator {
    /// The generator for worker `offset` of `stride` workers, starting the
    /// shared range at `start`. `offset` must be below `stride`.
    pub fn new(start: u64, offset: u64, stride: u64) -> Self {
        debug_assert!(stride >= 1 && offset < stride);
        Self {
            next: start + offset,
            stride: stride.max(1),
            last: None,
        }
    }

    /// Allocate a fresh labeled null from this worker's range.
    pub fn fresh(&mut self) -> Value {
        let id = self.next;
        self.next += self.stride;
        self.last = Some(id);
        Value::Null(NullId(id))
    }

    /// The largest label allocated so far, if any. The sweep barrier folds
    /// this into the run-level [`NullGenerator`] via
    /// [`NullGenerator::advance_to`].
    pub fn max_allocated(&self) -> Option<u64> {
        self.last
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn constructors_and_accessors() {
        assert_eq!(Value::int(7).as_int(), Some(7));
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert_eq!(Value::bool(true).as_bool(), Some(true));
        assert_eq!(Value::null(3).as_null(), Some(NullId(3)));
        assert!(Value::null(3).is_null());
        assert!(!Value::null(3).is_constant());
        assert!(Value::int(1).is_constant());
    }

    #[test]
    fn equality_is_by_label_for_nulls() {
        assert_eq!(Value::null(1), Value::null(1));
        assert_ne!(Value::null(1), Value::null(2));
        assert_ne!(Value::null(1), Value::int(1));
    }

    #[test]
    fn try_cmp_same_types() {
        assert_eq!(Value::int(1).try_cmp(&Value::int(2)), Some(Ordering::Less));
        assert_eq!(
            Value::str("b").try_cmp(&Value::str("a")),
            Some(Ordering::Greater)
        );
        assert_eq!(
            Value::bool(true).try_cmp(&Value::bool(true)),
            Some(Ordering::Equal)
        );
    }

    #[test]
    fn try_cmp_is_undefined_across_types_and_nulls() {
        assert_eq!(Value::int(1).try_cmp(&Value::str("1")), None);
        assert_eq!(Value::null(0).try_cmp(&Value::int(1)), None);
        assert_eq!(Value::null(0).try_cmp(&Value::null(0)), None);
    }

    #[test]
    fn null_generator_is_sequential_and_local() {
        let mut g = NullGenerator::new();
        assert_eq!(g.fresh(), Value::null(0));
        assert_eq!(g.fresh(), Value::null(1));
        let mut h = NullGenerator::starting_at(10);
        assert_eq!(h.fresh(), Value::null(10));
        assert_eq!(g.fresh(), Value::null(2));
        assert_eq!(g.peek_next(), 3);
    }

    #[test]
    fn strided_generators_are_disjoint_and_deterministic() {
        let mut a = StridedNullGenerator::new(10, 0, 3);
        let mut b = StridedNullGenerator::new(10, 1, 3);
        assert_eq!(a.max_allocated(), None);
        assert_eq!(a.fresh(), Value::null(10));
        assert_eq!(a.fresh(), Value::null(13));
        assert_eq!(b.fresh(), Value::null(11));
        assert_eq!(b.fresh(), Value::null(14));
        assert_eq!(a.max_allocated(), Some(13));
        assert_eq!(b.max_allocated(), Some(14));

        let mut g = NullGenerator::starting_at(10);
        g.advance_to(15);
        assert_eq!(g.fresh(), Value::null(15));
        g.advance_to(3); // never moves backwards
        assert_eq!(g.fresh(), Value::null(16));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::int(-4).to_string(), "-4");
        assert_eq!(Value::str("ab").to_string(), "\"ab\"");
        assert_eq!(Value::bool(false).to_string(), "false");
        assert_eq!(Value::null(12).to_string(), "N12");
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(3i64), Value::int(3));
        assert_eq!(Value::from("s"), Value::str("s"));
        assert_eq!(Value::from(String::from("s")), Value::str("s"));
        assert_eq!(Value::from(true), Value::bool(true));
    }
}
