//! Plain-text instance I/O.
//!
//! Instances serialize to the same fact syntax the scenario language uses
//! (`Relation(v1, v2, …).`, one fact per line), so data files, inline
//! `fact` declarations and `Instance::to_string()` are interchangeable.
//! Labeled nulls round-trip as `N<k>` tokens — useful for saving chase
//! outputs and reloading them.

use std::sync::Arc;

use crate::error::GromError;
use crate::instance::Instance;
use crate::value::Value;

/// Historical name for [`GromError`] as raised by the fact-file reader.
/// Syntax problems surface as [`GromError::Syntax`]; storage problems (e.g.
/// arity drift between facts of one relation) surface as the underlying
/// data variant wrapped in [`GromError::AtLine`].
pub type ReadError = GromError;

/// Parse one value token: integer, quoted string, boolean, or null `N<k>`.
fn parse_value(token: &str, line: usize) -> Result<Value, ReadError> {
    let t = token.trim();
    if t.is_empty() {
        return Err(ReadError::Syntax {
            line,
            message: "empty value".into(),
        });
    }
    if let Ok(i) = t.parse::<i64>() {
        return Ok(Value::int(i));
    }
    if t == "true" {
        return Ok(Value::bool(true));
    }
    if t == "false" {
        return Ok(Value::bool(false));
    }
    if let Some(rest) = t.strip_prefix('N') {
        if let Ok(label) = rest.parse::<u64>() {
            return Ok(Value::null(label));
        }
    }
    if (t.starts_with('"') && t.ends_with('"') && t.len() >= 2)
        || (t.starts_with('\'') && t.ends_with('\'') && t.len() >= 2)
    {
        let inner = &t[1..t.len() - 1];
        return Ok(Value::str(
            inner
                .replace("\\\"", "\"")
                .replace("\\'", "'")
                .replace("\\\\", "\\"),
        ));
    }
    Err(ReadError::Syntax {
        line,
        message: format!("cannot parse value `{t}` (quote strings)"),
    })
}

/// Split a comma-separated argument list, honoring quotes.
fn split_args(body: &str, line: usize) -> Result<Vec<String>, ReadError> {
    let mut out = Vec::new();
    let mut current = String::new();
    let mut quote: Option<char> = None;
    let mut escaped = false;
    for c in body.chars() {
        match quote {
            Some(q) => {
                current.push(c);
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == q {
                    quote = None;
                }
            }
            None => match c {
                '"' | '\'' => {
                    quote = Some(c);
                    current.push(c);
                }
                ',' => {
                    out.push(std::mem::take(&mut current));
                    continue;
                }
                _ => current.push(c),
            },
        }
    }
    if quote.is_some() {
        return Err(ReadError::Syntax {
            line,
            message: "unterminated string".into(),
        });
    }
    if !current.trim().is_empty() || !out.is_empty() {
        out.push(current);
    }
    Ok(out)
}

/// Read an instance from fact-per-line text. Blank lines and `#`/`//`
/// comments are ignored; the trailing `.` is optional.
pub fn read_instance(text: &str) -> Result<Instance, ReadError> {
    let mut inst = Instance::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with("//") {
            continue;
        }
        let line = line.strip_suffix('.').unwrap_or(line).trim_end();
        let open = line.find('(').ok_or_else(|| ReadError::Syntax {
            line: line_no,
            message: "expected `Relation(...)`".into(),
        })?;
        if !line.ends_with(')') {
            return Err(ReadError::Syntax {
                line: line_no,
                message: "expected closing `)`".into(),
            });
        }
        let rel: Arc<str> = Arc::from(line[..open].trim());
        if rel.is_empty() {
            return Err(ReadError::Syntax {
                line: line_no,
                message: "missing relation name".into(),
            });
        }
        let body = &line[open + 1..line.len() - 1];
        let mut values = Vec::new();
        for token in split_args(body, line_no)? {
            values.push(parse_value(&token, line_no)?);
        }
        inst.insert(&rel, values.into())
            .map_err(|e| e.at_line(line_no))?;
    }
    Ok(inst)
}

/// Serialize an instance as fact-per-line text (the format
/// [`read_instance`] reads; also valid `fact` syntax for scenario files
/// when no nulls are present).
pub fn write_instance(inst: &Instance) -> String {
    let mut out = String::new();
    for fact in inst.facts() {
        out.push_str(&fact.to_string());
        out.push_str(".\n");
    }
    out
}

/// Render an instance in a form that is stable under null relabeling and
/// insertion-order differences: facts are serialized with null labels
/// replaced by *canonical ranks* and the lines sorted.
///
/// Two chase runs that produce the same instance up to a renaming of
/// labeled nulls (the usual notion of equality for universal solutions)
/// render identically; instances that differ structurally render
/// differently except for pathological automorphism cases. Ranks are
/// computed by iterated partition refinement on each null's occurrence
/// signature (relation, column, co-occurring values), so nulls are
/// distinguished by their join structure, not by their labels.
pub fn canonical_render(inst: &Instance) -> String {
    use crate::value::NullId;
    use std::collections::BTreeMap;

    let facts: Vec<_> = inst.facts().collect();
    let nulls: Vec<NullId> = {
        let mut set: std::collections::BTreeSet<NullId> = Default::default();
        for f in &facts {
            set.extend(f.tuple.nulls());
        }
        set.into_iter().collect()
    };

    // rank[n]: canonical equivalence class of null n, refined iteratively.
    let mut rank: BTreeMap<NullId, usize> = nulls.iter().map(|&n| (n, 0)).collect();
    let render_value = |v: &Value, rank: &BTreeMap<NullId, usize>| match v.as_null() {
        Some(n) => format!("?{}", rank[&n]),
        None => v.to_string(),
    };
    for _ in 0..=nulls.len() {
        // Signature of each null under the current ranking: the sorted list
        // of its occurrence contexts.
        let mut sig: BTreeMap<NullId, Vec<String>> =
            nulls.iter().map(|&n| (n, Vec::new())).collect();
        for f in &facts {
            for (col, v) in f.tuple.values().iter().enumerate() {
                if let Some(n) = v.as_null() {
                    let ctx: Vec<String> = f
                        .tuple
                        .values()
                        .iter()
                        .map(|w| render_value(w, &rank))
                        .collect();
                    sig.get_mut(&n).expect("null collected above").push(format!(
                        "{}#{col}({})",
                        f.relation,
                        ctx.join(",")
                    ));
                }
            }
        }
        let mut keyed: Vec<(Vec<String>, NullId)> = sig
            .into_iter()
            .map(|(n, mut s)| {
                s.sort();
                (s, n)
            })
            .collect();
        keyed.sort();
        let mut next = BTreeMap::new();
        let mut class = 0usize;
        for (i, (s, n)) in keyed.iter().enumerate() {
            if i > 0 && *s != keyed[i - 1].0 {
                class += 1;
            }
            next.insert(*n, class);
        }
        if next == rank {
            break;
        }
        rank = next;
    }

    let mut lines: Vec<String> = facts
        .iter()
        .map(|f| {
            let vals: Vec<String> = f
                .tuple
                .values()
                .iter()
                .map(|v| render_value(v, &rank))
                .collect();
            format!("{}({})", f.relation, vals.join(","))
        })
        .collect();
    lines.sort();
    lines.join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Tuple;

    #[test]
    fn round_trip_all_value_kinds() {
        let mut inst = Instance::new();
        inst.add(
            "R",
            vec![
                Value::int(-5),
                Value::str("hello world"),
                Value::bool(true),
                Value::null(3),
            ],
        )
        .unwrap();
        inst.add("S_Empty", vec![Value::str("")]).unwrap();
        let text = write_instance(&inst);
        let back = read_instance(&text).unwrap();
        assert_eq!(back.len(), inst.len());
        assert!(back.contains_fact(
            "R",
            &Tuple::new(vec![
                Value::int(-5),
                Value::str("hello world"),
                Value::bool(true),
                Value::null(3),
            ])
        ));
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "# header\n\nR(1, 2).\n// trailing comment\nR(3, 4)\n";
        let inst = read_instance(text).unwrap();
        assert_eq!(inst.len(), 2);
    }

    #[test]
    fn quoted_strings_with_commas_and_escapes() {
        let text = r#"R("a, b", "say \"hi\"")."#;
        let inst = read_instance(text).unwrap();
        let t: Vec<_> = inst.tuples("R").collect();
        assert_eq!(t[0].get(0), Some(&Value::str("a, b")));
        assert_eq!(t[0].get(1), Some(&Value::str("say \"hi\"")));
    }

    #[test]
    fn null_tokens_parse() {
        let inst = read_instance("R(N0, N17).").unwrap();
        let t: Vec<_> = inst.tuples("R").collect();
        assert_eq!(t[0].get(0), Some(&Value::null(0)));
        assert_eq!(t[0].get(1), Some(&Value::null(17)));
    }

    #[test]
    fn zero_arity_facts() {
        let inst = read_instance("Flag().").unwrap();
        assert_eq!(inst.relation("Flag").unwrap().len(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = read_instance("R(1).\noops\n").unwrap_err();
        assert!(matches!(err, ReadError::Syntax { line: 2, .. }));
        let err = read_instance("R(bare_word).").unwrap_err();
        assert!(err.to_string().contains("quote strings"));
        let err = read_instance("R(\"unterminated).").unwrap_err();
        assert!(err.to_string().contains("unterminated"));
    }

    #[test]
    fn arity_drift_detected() {
        let err = read_instance("R(1).\nR(1, 2).").unwrap_err();
        assert_eq!(err.line(), Some(2));
        assert!(matches!(
            err.unwrap_context(),
            ReadError::ArityMismatch {
                expected: 1,
                actual: 2,
                ..
            }
        ));
    }

    #[test]
    fn canonical_render_is_null_renaming_invariant() {
        // Same structure, different labels and insertion order.
        let mut a = Instance::new();
        a.add("T", vec![Value::int(1), Value::null(0)]).unwrap();
        a.add("U", vec![Value::null(0), Value::null(7)]).unwrap();
        let mut b = Instance::new();
        b.add("U", vec![Value::null(3), Value::null(1)]).unwrap();
        b.add("T", vec![Value::int(1), Value::null(3)]).unwrap();
        assert_eq!(canonical_render(&a), canonical_render(&b));
    }

    #[test]
    fn canonical_render_distinguishes_join_structure() {
        // a: the same null links T and U; b: two unrelated nulls.
        let mut a = Instance::new();
        a.add("T", vec![Value::null(0)]).unwrap();
        a.add("U", vec![Value::null(0)]).unwrap();
        let mut b = Instance::new();
        b.add("T", vec![Value::null(0)]).unwrap();
        b.add("U", vec![Value::null(1)]).unwrap();
        assert_ne!(canonical_render(&a), canonical_render(&b));
    }

    #[test]
    fn canonical_render_counts_duplicated_shapes() {
        let mut a = Instance::new();
        a.add("T", vec![Value::null(0)]).unwrap();
        a.add("T", vec![Value::null(1)]).unwrap();
        let mut b = Instance::new();
        b.add("T", vec![Value::null(0)]).unwrap();
        assert_ne!(canonical_render(&a), canonical_render(&b));
    }
}
