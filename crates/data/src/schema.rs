//! Relational schemas: named relations with typed columns.
//!
//! GROM manipulates two physical schemas (source `S` and target `T`) plus
//! the *virtual* predicates of the semantic schemas. Physical relations are
//! declared here; virtual predicates exist only in `grom-lang` view
//! definitions and are never stored.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use crate::error::DataError;
use crate::tuple::Tuple;
use crate::value::Value;

/// The type of a column.
///
/// `Any` is the dynamically-typed escape hatch used by materialized view
/// extents and by generated scenarios where inferring a precise type is not
/// worth the trouble; labeled nulls are admissible in every column type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnType {
    Int,
    String,
    Bool,
    Any,
}

impl ColumnType {
    /// Does `value` conform to this column type? Labeled nulls conform to
    /// every type (they stand for an unknown value of that type).
    pub fn admits(&self, value: &Value) -> bool {
        matches!(
            (self, value),
            (_, Value::Null(_))
                | (ColumnType::Any, _)
                | (ColumnType::Int, Value::Int(_))
                | (ColumnType::String, Value::Str(_))
                | (ColumnType::String, Value::Sym(_))
                | (ColumnType::Bool, Value::Bool(_))
        )
    }
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ColumnType::Int => "int",
            ColumnType::String => "string",
            ColumnType::Bool => "bool",
            ColumnType::Any => "any",
        };
        f.write_str(s)
    }
}

/// One column of a relation: a name and a type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnSchema {
    pub name: String,
    pub ty: ColumnType,
}

impl ColumnSchema {
    pub fn new(name: impl Into<String>, ty: ColumnType) -> Self {
        Self {
            name: name.into(),
            ty,
        }
    }
}

/// The schema of one relation: its name and ordered, typed columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationSchema {
    name: Arc<str>,
    columns: Vec<ColumnSchema>,
}

impl RelationSchema {
    /// Build a relation schema; column names must be distinct.
    pub fn new(name: impl AsRef<str>, columns: Vec<ColumnSchema>) -> Result<Self, DataError> {
        let name: Arc<str> = Arc::from(name.as_ref());
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].iter().any(|d| d.name == c.name) {
                return Err(DataError::DuplicateColumn {
                    relation: name,
                    column: c.name.clone(),
                });
            }
        }
        Ok(Self { name, columns })
    }

    /// Convenience constructor: all columns typed [`ColumnType::Any`] with
    /// synthesized names `c0..c{n-1}`. Used for materialized view extents.
    pub fn untyped(name: impl AsRef<str>, arity: usize) -> Self {
        let columns = (0..arity)
            .map(|i| ColumnSchema::new(format!("c{i}"), ColumnType::Any))
            .collect();
        Self {
            name: Arc::from(name.as_ref()),
            columns,
        }
    }

    pub fn name(&self) -> &Arc<str> {
        &self.name
    }

    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    pub fn columns(&self) -> &[ColumnSchema] {
        &self.columns
    }

    /// Index of the column called `name`, if any.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Check a tuple against this schema (arity and column types).
    pub fn check_tuple(&self, tuple: &Tuple) -> Result<(), DataError> {
        if tuple.arity() != self.arity() {
            return Err(DataError::ArityMismatch {
                relation: self.name.clone(),
                expected: self.arity(),
                actual: tuple.arity(),
            });
        }
        for (col, value) in self.columns.iter().zip(tuple.values()) {
            if !col.ty.admits(value) {
                return Err(DataError::TypeMismatch {
                    relation: self.name.clone(),
                    column: col.name.clone(),
                    expected: col.ty,
                    actual: value.clone(),
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for RelationSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{}: {}", c.name, c.ty)?;
        }
        f.write_str(")")
    }
}

/// A set of relation schemas, keyed by relation name.
///
/// Stored in a `BTreeMap` so iteration (and therefore every downstream
/// artifact: materialization order, chase order, printed programs) is
/// deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schema {
    relations: BTreeMap<Arc<str>, RelationSchema>,
}

impl Schema {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a relation; rejects duplicate names.
    pub fn add_relation(&mut self, relation: RelationSchema) -> Result<(), DataError> {
        if self.relations.contains_key(relation.name()) {
            return Err(DataError::DuplicateRelation {
                relation: relation.name().clone(),
            });
        }
        self.relations.insert(relation.name().clone(), relation);
        Ok(())
    }

    /// Builder-style [`Schema::add_relation`].
    pub fn with_relation(mut self, relation: RelationSchema) -> Result<Self, DataError> {
        self.add_relation(relation)?;
        Ok(self)
    }

    pub fn relation(&self, name: &str) -> Option<&RelationSchema> {
        self.relations.get(name)
    }

    pub fn contains(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }

    pub fn relations(&self) -> impl Iterator<Item = &RelationSchema> {
        self.relations.values()
    }

    pub fn relation_names(&self) -> impl Iterator<Item = &Arc<str>> {
        self.relations.keys()
    }

    pub fn len(&self) -> usize {
        self.relations.len()
    }

    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// The union of two schemas; duplicate relation names are an error.
    ///
    /// Used by the chase, whose dependencies span the source and the target
    /// schema (GROM requires physically distinct relation names, which the
    /// paper achieves with `S-`/`T-` prefixes).
    pub fn union(&self, other: &Schema) -> Result<Schema, DataError> {
        let mut out = self.clone();
        for rel in other.relations() {
            out.add_relation(rel.clone())?;
        }
        Ok(out)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for rel in self.relations.values() {
            writeln!(f, "{rel}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn product() -> RelationSchema {
        RelationSchema::new(
            "S_Product",
            vec![
                ColumnSchema::new("id", ColumnType::Int),
                ColumnSchema::new("name", ColumnType::String),
                ColumnSchema::new("store", ColumnType::String),
                ColumnSchema::new("rating", ColumnType::Int),
            ],
        )
        .unwrap()
    }

    #[test]
    fn relation_schema_basics() {
        let r = product();
        assert_eq!(r.arity(), 4);
        assert_eq!(r.column_index("store"), Some(2));
        assert_eq!(r.column_index("missing"), None);
        assert_eq!(
            r.to_string(),
            "S_Product(id: int, name: string, store: string, rating: int)"
        );
    }

    #[test]
    fn duplicate_columns_rejected() {
        let err = RelationSchema::new(
            "R",
            vec![
                ColumnSchema::new("a", ColumnType::Int),
                ColumnSchema::new("a", ColumnType::Int),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, DataError::DuplicateColumn { .. }));
    }

    #[test]
    fn untyped_admits_everything() {
        let r = RelationSchema::untyped("V", 2);
        let t = Tuple::new(vec![Value::int(1), Value::str("x")]);
        assert!(r.check_tuple(&t).is_ok());
        let t = Tuple::new(vec![Value::null(0), Value::bool(true)]);
        assert!(r.check_tuple(&t).is_ok());
    }

    #[test]
    fn check_tuple_arity_and_types() {
        let r = product();
        let good = Tuple::new(vec![
            Value::int(1),
            Value::str("tv"),
            Value::str("acme"),
            Value::int(5),
        ]);
        assert!(r.check_tuple(&good).is_ok());

        let short = Tuple::new(vec![Value::int(1)]);
        assert!(matches!(
            r.check_tuple(&short),
            Err(DataError::ArityMismatch {
                expected: 4,
                actual: 1,
                ..
            })
        ));

        let wrong = Tuple::new(vec![
            Value::str("one"),
            Value::str("tv"),
            Value::str("acme"),
            Value::int(5),
        ]);
        assert!(matches!(
            r.check_tuple(&wrong),
            Err(DataError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn nulls_admitted_in_typed_columns() {
        let r = product();
        let t = Tuple::new(vec![
            Value::null(1),
            Value::str("tv"),
            Value::null(2),
            Value::int(5),
        ]);
        assert!(r.check_tuple(&t).is_ok());
    }

    #[test]
    fn schema_union_detects_collisions() {
        let mut s = Schema::new();
        s.add_relation(product()).unwrap();
        let mut t = Schema::new();
        t.add_relation(RelationSchema::untyped("T_Product", 3))
            .unwrap();
        let u = s.union(&t).unwrap();
        assert_eq!(u.len(), 2);
        assert!(u.contains("S_Product"));
        assert!(u.contains("T_Product"));
        assert!(s.union(&s).is_err());
    }

    #[test]
    fn schema_iteration_is_sorted() {
        let mut s = Schema::new();
        s.add_relation(RelationSchema::untyped("Zeta", 1)).unwrap();
        s.add_relation(RelationSchema::untyped("Alpha", 1)).unwrap();
        let names: Vec<_> = s.relation_names().map(|n| n.to_string()).collect();
        assert_eq!(names, vec!["Alpha", "Zeta"]);
    }
}
