//! Tuples and facts.

use std::fmt;
use std::sync::Arc;

use crate::value::{NullId, Value};

/// A row: a fixed-width sequence of [`Value`]s.
///
/// Tuples are immutable once built; the egd chase replaces whole tuples
/// rather than mutating in place, which keeps the instance indexes honest.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple {
    values: Box<[Value]>,
}

impl Tuple {
    pub fn new(values: Vec<Value>) -> Self {
        Self {
            values: values.into_boxed_slice(),
        }
    }

    pub fn arity(&self) -> usize {
        self.values.len()
    }

    pub fn values(&self) -> &[Value] {
        &self.values
    }

    pub fn get(&self, i: usize) -> Option<&Value> {
        self.values.get(i)
    }

    /// Does any position hold a labeled null?
    pub fn has_nulls(&self) -> bool {
        self.values.iter().any(Value::is_null)
    }

    /// Iterate over the labels of the nulls in this tuple.
    pub fn nulls(&self) -> impl Iterator<Item = NullId> + '_ {
        self.values.iter().filter_map(Value::as_null)
    }

    /// Apply a null substitution, returning the rewritten tuple and whether
    /// anything changed. `lookup` maps a null label to its replacement.
    pub fn substitute_nulls(
        &self,
        mut lookup: impl FnMut(NullId) -> Option<Value>,
    ) -> (Tuple, bool) {
        let mut changed = false;
        let values: Vec<Value> = self
            .values
            .iter()
            .map(|v| match v.as_null().and_then(&mut lookup) {
                Some(replacement) => {
                    changed = true;
                    replacement
                }
                None => v.clone(),
            })
            .collect();
        (Tuple::new(values), changed)
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{v}")?;
        }
        f.write_str(")")
    }
}

/// A tuple tagged with the relation it belongs to.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fact {
    pub relation: Arc<str>,
    pub tuple: Tuple,
}

impl Fact {
    pub fn new(relation: impl AsRef<str>, values: Vec<Value>) -> Self {
        Self {
            relation: Arc::from(relation.as_ref()),
            tuple: Tuple::new(values),
        }
    }
}

impl fmt::Display for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.relation, self.tuple)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_basics() {
        let t = Tuple::new(vec![Value::int(1), Value::str("a"), Value::null(2)]);
        assert_eq!(t.arity(), 3);
        assert_eq!(t.get(0), Some(&Value::int(1)));
        assert_eq!(t.get(3), None);
        assert!(t.has_nulls());
        assert_eq!(t.nulls().collect::<Vec<_>>(), vec![NullId(2)]);
    }

    #[test]
    fn tuple_without_nulls() {
        let t = Tuple::new(vec![Value::int(1)]);
        assert!(!t.has_nulls());
        assert_eq!(t.nulls().count(), 0);
    }

    #[test]
    fn substitute_nulls_rewrites_only_mapped_labels() {
        let t = Tuple::new(vec![Value::null(0), Value::null(1), Value::int(9)]);
        let (u, changed) = t.substitute_nulls(|id| {
            if id == NullId(0) {
                Some(Value::int(42))
            } else {
                None
            }
        });
        assert!(changed);
        assert_eq!(
            u,
            Tuple::new(vec![Value::int(42), Value::null(1), Value::int(9)])
        );

        let (v, changed) = u.substitute_nulls(|_| None);
        assert!(!changed);
        assert_eq!(v, u);
    }

    #[test]
    fn fact_display() {
        let f = Fact::new("T_Product", vec![Value::int(1), Value::str("tv")]);
        assert_eq!(f.to_string(), "T_Product(1, \"tv\")");
    }
}
