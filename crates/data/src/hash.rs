//! A fast, non-cryptographic hasher for the storage-internal maps.
//!
//! The relation index maps, the tuple membership map and the symbol table
//! hash on every insert and every probe — the hottest loops of the whole
//! engine. They key on data the engine generated itself (tuples, values,
//! interned symbols), so the HashDoS resistance of the std `SipHash`
//! default buys nothing here; this is the word-folding FxHash algorithm
//! used by the Rust compiler for the same reason. Do **not** use it for
//! maps keyed by untrusted external input.

use std::hash::{BuildHasherDefault, Hasher};

/// Word-at-a-time folding hasher (the rustc FxHash algorithm).
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            // Fold the length in so "a" and "a\0" disagree.
            self.add(u64::from_le_bytes(buf) ^ ((rem.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn write_i64(&mut self, n: i64) {
        self.add(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`]; drop-in for engine-internal maps.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn distinguishes_close_inputs() {
        assert_ne!(hash_of("a"), hash_of("b"));
        assert_ne!(hash_of("a"), hash_of("a\0"));
        assert_ne!(hash_of(1u64), hash_of(2u64));
        assert_ne!(hash_of((1u64, 2u64)), hash_of((2u64, 1u64)));
    }

    #[test]
    fn is_deterministic() {
        assert_eq!(hash_of("warehouse"), hash_of("warehouse"));
        let m: FxHashMap<&str, i32> = [("a", 1), ("b", 2)].into_iter().collect();
        assert_eq!(m["a"], 1);
        assert_eq!(m["b"], 2);
    }
}
