//! Property tests for the indexed tuple store: on random relations with
//! random composite keys, every indexed access path (`scan`, `scan_each`,
//! `any_match`, `estimate`) must agree with the naive linear scan — and
//! keep agreeing after surgical null substitution rewrites rows in place.

use std::collections::HashMap;

use proptest::prelude::*;

use grom_data::{Instance, NullId, Relation, Tuple, Value};

/// A small value domain so patterns actually hit: ints 0..4, two strings,
/// and labeled nulls 0..3.
fn val(sel: usize) -> Value {
    match sel % 9 {
        0..=3 => Value::int((sel % 9) as i64),
        4 => Value::str("a"),
        5 => Value::str("b"),
        _ => Value::null((sel % 9 - 6) as u64),
    }
}

/// The reference implementation: filter the full iterator by the pattern.
fn linear_scan<'a>(rel: &'a Relation, pattern: &[Option<Value>]) -> Vec<&'a Tuple> {
    rel.iter()
        .filter(|t| {
            pattern
                .iter()
                .enumerate()
                .all(|(i, want)| want.as_ref().is_none_or(|v| t.get(i) == Some(v)))
        })
        .collect()
}

fn arb_rows(arity: usize) -> impl Strategy<Value = Vec<Vec<usize>>> {
    prop::collection::vec(prop::collection::vec(0usize..9, arity..=arity), 0..40)
}

fn arb_patterns(arity: usize) -> impl Strategy<Value = Vec<Vec<usize>>> {
    // Selector 9 encodes "unbound" in a pattern position.
    prop::collection::vec(prop::collection::vec(0usize..10, arity..=arity), 1..12)
}

fn build(rows: &[Vec<usize>], keys: &[Vec<usize>], late_keys: &[Vec<usize>]) -> Instance {
    let mut inst = Instance::new();
    for cols in keys {
        inst.register_key("R", cols);
    }
    for row in rows {
        inst.add("R", row.iter().map(|&s| val(s)).collect::<Vec<_>>())
            .unwrap();
    }
    for cols in late_keys {
        inst.register_key("R", cols);
    }
    inst
}

fn pattern_of(sels: &[usize]) -> Vec<Option<Value>> {
    sels.iter()
        .map(|&s| if s == 9 { None } else { Some(val(s)) })
        .collect()
}

fn assert_paths_agree(rel: &Relation, pattern: &[Option<Value>]) {
    let expect = linear_scan(rel, pattern);
    let got = rel.scan(pattern);
    assert_eq!(got, expect, "scan diverges from linear scan on {pattern:?}");
    assert_eq!(rel.any_match(pattern), !expect.is_empty());
    assert!(
        rel.estimate(pattern) >= expect.len(),
        "estimate under-counts: {} < {} on {pattern:?}",
        rel.estimate(pattern),
        expect.len()
    );
    // Early-stopping streams see a prefix of the same sequence.
    let mut first = None;
    rel.scan_each(pattern, &mut |t| {
        first = Some(t.clone());
        false
    });
    assert_eq!(first.as_ref(), expect.first().copied());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Indexed scans over composite keys (registered both before and after
    /// the rows arrive) agree with the linear reference scan on every
    /// pattern shape.
    #[test]
    fn indexed_scans_match_linear_scans(
        rows in arb_rows(3),
        patterns in arb_patterns(3),
        eager in prop::bool::ANY,
    ) {
        let (keys, late): (&[Vec<usize>], &[Vec<usize>]) = if eager {
            (&[vec![0, 1], vec![1, 2], vec![0, 1, 2]], &[])
        } else {
            (&[], &[vec![0, 1], vec![1, 2], vec![0, 1, 2]])
        };
        let inst = build(&rows, keys, late);
        if let Some(rel) = inst.relation("R") {
            for sels in &patterns {
                assert_paths_agree(rel, &pattern_of(sels));
            }
        }
    }

    /// After a null-substitution pass (the surgical rewrite that lifts
    /// only affected rows), the indexes still agree with the linear scan
    /// and no tombstone leaks into any access path.
    #[test]
    fn scans_stay_consistent_after_null_substitution(
        rows in arb_rows(3),
        patterns in arb_patterns(3),
        null_to_int in prop::bool::ANY,
    ) {
        let mut inst = build(&rows, &[vec![0, 1], vec![0, 2]], &[]);
        // Merge null 0 into either a constant or another null; repeat so
        // compaction paths get exercised on larger inputs.
        for round in 0..3u64 {
            let mut map = HashMap::new();
            let target = if null_to_int {
                Value::int(round as i64)
            } else {
                Value::null(round + 10)
            };
            map.insert(NullId(round.saturating_sub(1)), target.clone());
            map.insert(NullId(round), target);
            inst.substitute_nulls_batch(&map);
        }
        if let Some(rel) = inst.relation("R") {
            for sels in &patterns {
                assert_paths_agree(rel, &pattern_of(sels));
            }
            // The live count is consistent with the iterator.
            assert_eq!(rel.iter().count(), rel.len());
        }
    }
}
