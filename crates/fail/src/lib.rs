//! Fault injection for resilience testing.
//!
//! The chase engine calls [`fire`] at a handful of named points (sweep
//! start, the parallel merge barrier, substitution passes, worker entry).
//! By default every call is a no-op: the plan is `None` and `fire`
//! returns `None` after one relaxed atomic load. A plan is installed
//! either from the `GROM_FAIL` environment variable (read once, lazily)
//! or programmatically via [`install`] — the hook the kill/resume
//! property tests use.
//!
//! # Grammar
//!
//! ```text
//! GROM_FAIL = directive ("," directive)*
//! directive = point ":" action ["@" n]
//! point     = "sweep" | "barrier" | "subst" | "worker"
//! action    = "panic" | "interrupt"
//! ```
//!
//! `@n` makes the directive fire on the n-th *hit* of its point (1-based,
//! counted per point across the process); omitted means the first hit.
//! Each directive fires at most once. Examples:
//!
//! ```text
//! GROM_FAIL=worker:panic          # panic the first worker job
//! GROM_FAIL=sweep:interrupt@3     # force an interruption at sweep 3
//! GROM_FAIL=barrier:panic@2,subst:interrupt
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// What an armed directive does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// The injection point panics (`panic!("grom_fail: ...")`). Used to
    /// prove worker-panic containment.
    Panic,
    /// The injection point reports a forced interruption; the chase loop
    /// treats it like an exhausted budget.
    Interrupt,
}

#[derive(Debug, Clone)]
struct Directive {
    point: String,
    action: FailAction,
    /// 1-based hit count at which the directive fires.
    at: u64,
    fired: bool,
}

#[derive(Debug, Default)]
struct FailPlan {
    directives: Vec<Directive>,
    /// Per-point hit counters, keyed by point name.
    hits: Vec<(String, u64)>,
}

/// Fast path: `false` until a plan is installed, then stays `true` until
/// [`clear`]. Lets `fire` cost one relaxed load in the common case.
static ARMED: AtomicBool = AtomicBool::new(false);
static PLAN: Mutex<Option<FailPlan>> = Mutex::new(None);
static ENV_READ: AtomicBool = AtomicBool::new(false);

const POINTS: [&str; 4] = ["sweep", "barrier", "subst", "worker"];

fn parse_plan(spec: &str) -> Result<FailPlan, String> {
    let mut plan = FailPlan::default();
    for raw in spec.split(',') {
        let raw = raw.trim();
        if raw.is_empty() {
            continue;
        }
        let (head, at) = match raw.split_once('@') {
            Some((head, n)) => {
                let at = n
                    .trim()
                    .parse::<u64>()
                    .map_err(|e| format!("bad hit count in `{raw}`: {e}"))?;
                if at == 0 {
                    return Err(format!("hit count in `{raw}` is 1-based, got 0"));
                }
                (head, at)
            }
            None => (raw, 1),
        };
        let (point, action) = head
            .split_once(':')
            .ok_or_else(|| format!("directive `{raw}` is not `point:action[@n]`"))?;
        let point = point.trim();
        if !POINTS.contains(&point) {
            return Err(format!(
                "unknown point `{point}` (expected one of {})",
                POINTS.join(", ")
            ));
        }
        let action = match action.trim() {
            "panic" => FailAction::Panic,
            "interrupt" => FailAction::Interrupt,
            other => return Err(format!("unknown action `{other}` in `{raw}`")),
        };
        plan.directives.push(Directive {
            point: point.to_string(),
            action,
            at,
            fired: false,
        });
    }
    Ok(plan)
}

fn ensure_env_plan() {
    if ENV_READ.swap(true, Ordering::SeqCst) {
        return;
    }
    if let Ok(spec) = std::env::var("GROM_FAIL") {
        if !spec.trim().is_empty() {
            match parse_plan(&spec) {
                Ok(plan) => {
                    *PLAN.lock().unwrap() = Some(plan);
                    ARMED.store(true, Ordering::SeqCst);
                }
                Err(e) => eprintln!("warning: ignoring malformed GROM_FAIL: {e}"),
            }
        }
    }
}

/// Install a fault plan programmatically (tests). Replaces any existing
/// plan, including one read from the environment.
pub fn install(spec: &str) -> Result<(), String> {
    ENV_READ.store(true, Ordering::SeqCst);
    let plan = parse_plan(spec)?;
    let armed = !plan.directives.is_empty();
    *PLAN.lock().unwrap() = Some(plan);
    ARMED.store(armed, Ordering::SeqCst);
    Ok(())
}

/// Remove the installed plan; `fire` returns to the no-op fast path.
pub fn clear() {
    ENV_READ.store(true, Ordering::SeqCst);
    *PLAN.lock().unwrap() = None;
    ARMED.store(false, Ordering::SeqCst);
}

/// Record one hit of `point` and return the action of a directive that
/// fires on this hit, if any. No-op (one relaxed load) unless a plan is
/// armed.
pub fn fire(point: &str) -> Option<FailAction> {
    if !ARMED.load(Ordering::Relaxed) {
        // Lazily pick up GROM_FAIL on the very first hit of any point.
        if ENV_READ.load(Ordering::Relaxed) {
            return None;
        }
        ensure_env_plan();
        if !ARMED.load(Ordering::Relaxed) {
            return None;
        }
    }
    let mut guard = PLAN.lock().unwrap();
    let plan = guard.as_mut()?;
    let hit = match plan.hits.iter_mut().find(|(p, _)| p == point) {
        Some((_, n)) => {
            *n += 1;
            *n
        }
        None => {
            plan.hits.push((point.to_string(), 1));
            1
        }
    };
    for d in &mut plan.directives {
        if !d.fired && d.point == point && d.at == hit {
            d.fired = true;
            return Some(d.action);
        }
    }
    None
}

/// Fire `point` and panic if an armed directive says so; otherwise return
/// `true` when the point should report a forced interruption.
pub fn hit(point: &str) -> bool {
    match fire(point) {
        Some(FailAction::Panic) => panic!("grom_fail: injected panic at `{point}`"),
        Some(FailAction::Interrupt) => true,
        None => false,
    }
}

/// Serialize tests that [`install`] plans: the plan is process-global, so
/// concurrent installing tests would trample each other. A poisoned lock
/// (a holder panicked — e.g. a contained injected panic) is recovered, not
/// propagated.
pub fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    // The plan is process-global; keep the tests serialized.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn unarmed_fire_is_a_noop() {
        let _g = TEST_LOCK.lock().unwrap();
        clear();
        assert_eq!(fire("sweep"), None);
        assert!(!hit("barrier"));
    }

    #[test]
    fn directive_fires_on_the_requested_hit_once() {
        let _g = TEST_LOCK.lock().unwrap();
        install("sweep:interrupt@3").unwrap();
        assert_eq!(fire("sweep"), None);
        assert_eq!(fire("barrier"), None); // separate counter
        assert_eq!(fire("sweep"), None);
        assert_eq!(fire("sweep"), Some(FailAction::Interrupt));
        assert_eq!(fire("sweep"), None); // fires at most once
        clear();
    }

    #[test]
    fn multiple_directives_parse_and_fire_independently() {
        let _g = TEST_LOCK.lock().unwrap();
        install("worker:panic@2, subst:interrupt").unwrap();
        assert_eq!(fire("worker"), None);
        assert_eq!(fire("worker"), Some(FailAction::Panic));
        assert!(hit("subst"));
        assert!(!hit("subst"));
        clear();
    }

    #[test]
    fn malformed_specs_are_rejected() {
        let _g = TEST_LOCK.lock().unwrap();
        assert!(install("bogus:panic").is_err());
        assert!(install("sweep:explode").is_err());
        assert!(install("sweep:panic@0").is_err());
        assert!(install("sweep").is_err());
        clear();
    }

    #[test]
    fn injected_panic_is_catchable() {
        let _g = TEST_LOCK.lock().unwrap();
        install("worker:panic").unwrap();
        let result = std::panic::catch_unwind(|| hit("worker"));
        assert!(result.is_err());
        clear();
    }
}
