//! Minimal, dependency-free stand-in for the parts of the `rand` crate this
//! workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the
//! `Rng` methods `gen_range` / `gen_bool`.
//!
//! The workspace builds fully offline, so the real crates.io `rand` cannot
//! be fetched; workloads only need a deterministic, seedable, reasonably
//! well-mixed generator, which the splitmix64-based [`rngs::StdRng`]
//! provides. The stream differs from upstream `rand`, which is fine: every
//! consumer seeds explicitly and only relies on run-to-run determinism.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level 64-bit generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample uniformly from a half-open or inclusive integer range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Return `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        // 53 random mantissa bits -> uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// Seeding interface, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Ranges that can be sampled by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

fn below<R: RngCore>(rng: &mut R, n: u128) -> u128 {
    debug_assert!(n > 0);
    let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
    wide % n
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let width = (self.end as i128) - (self.start as i128);
                (self.start as i128 + below(rng, width as u128) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let width = (hi as i128) - (lo as i128) + 1;
                (lo as i128 + below(rng, width as u128) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seedable generator (splitmix64 stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            Self { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..=1000), b.gen_range(0i64..=1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&x));
            let y = rng.gen_range(0usize..=3);
            assert!(y <= 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
