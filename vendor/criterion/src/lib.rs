//! Minimal, dependency-free stand-in for the parts of `criterion` the
//! workspace benches use: `Criterion::benchmark_group`, group
//! `sample_size` / `throughput` / `bench_with_input` / `finish`,
//! `BenchmarkId`, `Throughput`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! The workspace builds fully offline, so the real crates.io `criterion`
//! cannot be fetched. This shim keeps every bench source-compatible and
//! keeps `cargo bench` useful: in normal mode each benchmark is timed over
//! a bounded number of iterations and a mean per-iteration time is
//! printed; with `--test` (the CI smoke mode, same flag as upstream) each
//! benchmark body runs exactly once and no timing is reported.
//!
//! When the `GROM_BENCH_JSON` env var names a file, every timed benchmark
//! additionally appends one JSON line —
//! `{"name":"<group>/<id>","wall_ms":<mean>,"iters":<n>}` — the same
//! format the `grom-bench` experiments harness emits and the CI
//! `bench_gate` binary compares against a committed baseline, so criterion
//! runs and the bench job share one machine-readable output. Test-mode
//! (single untimed iteration) runs emit nothing.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Upstream criterion also reacts to `--test`; cargo itself passes
        // `--bench`, which we ignore along with any unknown flags.
        let test_mode = std::env::args().any(|a| a == "--test");
        Self { test_mode }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Throughput annotation (recorded, echoed in normal-mode output).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            test_mode: self.criterion.test_mode,
            iters: 0,
            elapsed: Duration::ZERO,
        };
        routine(&mut bencher, input);
        self.report(&id, &bencher);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            test_mode: self.criterion.test_mode,
            iters: 0,
            elapsed: Duration::ZERO,
        };
        routine(&mut bencher);
        let id = BenchmarkId { id: id.into() };
        self.report(&id, &bencher);
        self
    }

    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, bencher: &Bencher) {
        if self.criterion.test_mode {
            println!("{}/{}: ok (1 iteration, --test mode)", self.name, id.id);
            return;
        }
        let iters = bencher.iters.max(1);
        let mean = bencher.elapsed.as_secs_f64() / iters as f64;
        if let Ok(path) = std::env::var("GROM_BENCH_JSON") {
            if let Err(e) = append_jsonl(&path, &self.name, &id.id, mean * 1e3, iters) {
                eprintln!("criterion shim: cannot append to {path}: {e}");
            }
        }
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if mean > 0.0 => {
                format!(" ({:.0} elem/s)", n as f64 / mean)
            }
            Some(Throughput::Bytes(n) | Throughput::BytesDecimal(n)) if mean > 0.0 => {
                format!(" ({:.0} B/s)", n as f64 / mean)
            }
            _ => String::new(),
        };
        println!(
            "{}/{}: {:.3} ms/iter over {} iters{}",
            self.name,
            id.id,
            mean * 1e3,
            iters,
            rate
        );
    }
}

/// Append one bench record in the shared JSONL bench format (see the
/// module docs; `grom-bench`'s `bench_gate` consumes it).
fn append_jsonl(
    path: &str,
    group: &str,
    id: &str,
    wall_ms: f64,
    iters: u64,
) -> std::io::Result<()> {
    use std::io::Write;
    let escape = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(
        f,
        "{{\"name\":\"{}/{}\",\"wall_ms\":{wall_ms:.4},\"iters\":{iters}}}",
        escape(group),
        escape(id)
    )
}

/// Passed to benchmark routines; `iter` runs and times the closure.
#[derive(Debug)]
pub struct Bencher {
    test_mode: bool,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            self.iters = 1;
            return;
        }
        // One warmup iteration, then time a bounded batch: enough for a
        // smoke signal without upstream criterion's statistical machinery.
        black_box(routine());
        let budget = Duration::from_secs(2);
        let start = Instant::now();
        let mut iters = 0u64;
        while iters < 20 && start.elapsed() < budget {
            black_box(routine());
            iters += 1;
        }
        self.iters = iters.max(1);
        self.elapsed = start.elapsed();
    }
}

/// Collect benchmark functions into a runnable group, as upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running every group; tolerates harness flags such as
/// `--bench` (passed by cargo) and `--test` (smoke mode).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
