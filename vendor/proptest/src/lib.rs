//! Minimal, dependency-free stand-in for the parts of `proptest` this
//! workspace uses. The workspace builds fully offline, so the real
//! crates.io `proptest` cannot be fetched.
//!
//! What is faithfully reproduced:
//!
//! * the [`strategy::Strategy`] trait with `prop_map`, `prop_flat_map`,
//!   `prop_filter` and `boxed`,
//! * strategies for integer ranges, `&str` regex-lite patterns (character
//!   classes with `{m,n}` quantifiers), tuples, `Vec<Strategy>`,
//!   [`strategy::Just`], [`strategy::Union`] (uniform and weighted),
//!   `any::<bool>()` and `prop::bool::ANY`,
//! * `prop::collection::vec` with `usize` / range / inclusive-range sizes,
//! * the [`proptest!`] macro with `#![proptest_config(..)]` support, and
//!   the `prop_assert*` macros, and
//! * [`test_runner::TestRng`], deterministic per test name so CI runs are
//!   reproducible.
//!
//! What is intentionally missing: shrinking. A failing case panics with
//! the generated inputs in the assertion message instead of a minimized
//! counterexample. For this repository's properties that trade-off buys a
//! zero-dependency build.

#![forbid(unsafe_code)]

pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// Deterministic splitmix64 generator used to drive strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed deterministically from a test name (FNV-1a) so every run
        /// of a given property explores the same cases.
        pub fn deterministic(name: &str) -> Self {
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in name.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self { state: hash }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            let wide = (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64());
            (wide % u128::from(n)) as u64
        }

        /// Uniform draw from the inclusive signed range `[lo, hi]`.
        pub fn uniform_i128(&mut self, lo: i128, hi: i128) -> i128 {
            debug_assert!(lo <= hi);
            let width = (hi - lo + 1) as u128;
            let wide = (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64());
            lo + (wide % width) as i128
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of random values. Unlike upstream proptest there is no
    /// value tree: `generate` produces the final value directly (no
    /// shrinking).
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, map }
        }

        fn prop_flat_map<S, F>(self, map: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, map }
        }

        fn prop_filter<F>(self, whence: &'static str, predicate: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence,
                predicate,
            }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: std::rc::Rc::new(self),
            }
        }
    }

    /// Object-safe adapter behind [`BoxedStrategy`].
    trait DynStrategy {
        type Value;
        fn dyn_generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy, as returned by [`Strategy::boxed`].
    pub struct BoxedStrategy<T> {
        inner: std::rc::Rc<dyn DynStrategy<Value = T>>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            Self {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> std::fmt::Debug for BoxedStrategy<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("BoxedStrategy")
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.inner.dyn_generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Picks one of several strategies, uniformly or by weight.
    #[derive(Debug)]
    pub struct Union<S: Strategy> {
        options: Vec<(u32, S)>,
        total_weight: u64,
    }

    impl<S: Strategy> Union<S> {
        pub fn new(options: impl IntoIterator<Item = S>) -> Self {
            Self::new_weighted(options.into_iter().map(|s| (1, s)).collect())
        }

        pub fn new_weighted(options: Vec<(u32, S)>) -> Self {
            assert!(!options.is_empty(), "Union requires at least one option");
            let total_weight = options.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total_weight > 0, "Union requires positive total weight");
            Self {
                options,
                total_weight,
            }
        }
    }

    impl<S: Strategy> Strategy for Union<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            let mut pick = rng.below(self.total_weight);
            for (weight, option) in &self.options {
                let weight = u64::from(*weight);
                if pick < weight {
                    return option.generate(rng);
                }
                pick -= weight;
            }
            unreachable!("weights exhausted")
        }
    }

    /// Result of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        map: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.inner.generate(rng))
        }
    }

    /// Result of [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        map: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.map)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Result of [`Strategy::prop_filter`]; rejection-samples the inner
    /// strategy.
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        predicate: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let candidate = self.inner.generate(rng);
                if (self.predicate)(&candidate) {
                    return candidate;
                }
            }
            panic!("prop_filter({:?}) rejected 10000 candidates", self.whence);
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    rng.uniform_i128(self.start as i128, self.end as i128 - 1) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    rng.uniform_i128(*self.start() as i128, *self.end() as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    /// `&str` patterns act as regex-lite string strategies: literal
    /// characters, character classes `[a-z0-9_]`, and quantifiers
    /// `{m}` / `{m,n}` / `?` / `*` / `+` (the latter two capped at 8).
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_pattern(self, rng)
        }
    }

    fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let alphabet: Vec<char> = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .unwrap_or_else(|| panic!("unclosed `[` in pattern {pattern:?}"))
                        + i;
                    let class = &chars[i + 1..close];
                    i = close + 1;
                    expand_class(class, pattern)
                }
                '\\' => {
                    i += 1;
                    let escaped = *chars
                        .get(i)
                        .unwrap_or_else(|| panic!("dangling `\\` in pattern {pattern:?}"));
                    i += 1;
                    vec![escaped]
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            let (lo, hi) = parse_quantifier(&chars, &mut i, pattern);
            let count = if lo == hi {
                lo
            } else {
                lo + rng.below((hi - lo + 1) as u64) as usize
            };
            for _ in 0..count {
                out.push(alphabet[rng.below(alphabet.len() as u64) as usize]);
            }
        }
        out
    }

    fn expand_class(class: &[char], pattern: &str) -> Vec<char> {
        assert!(!class.is_empty(), "empty `[]` in pattern {pattern:?}");
        let mut alphabet = Vec::new();
        let mut k = 0;
        while k < class.len() {
            if k + 2 < class.len() && class[k + 1] == '-' {
                let (lo, hi) = (class[k] as u32, class[k + 2] as u32);
                assert!(lo <= hi, "inverted class range in pattern {pattern:?}");
                alphabet.extend((lo..=hi).filter_map(char::from_u32));
                k += 3;
            } else {
                alphabet.push(class[k]);
                k += 1;
            }
        }
        alphabet
    }

    fn parse_quantifier(chars: &[char], i: &mut usize, pattern: &str) -> (usize, usize) {
        match chars.get(*i) {
            Some('{') => {
                let close = chars[*i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed `{{` in pattern {pattern:?}"))
                    + *i;
                let body: String = chars[*i + 1..close].iter().collect();
                *i = close + 1;
                let parse = |s: &str| {
                    s.trim()
                        .parse::<usize>()
                        .unwrap_or_else(|_| panic!("bad quantifier in pattern {pattern:?}"))
                };
                match body.split_once(',') {
                    Some((lo, hi)) => (parse(lo), parse(hi)),
                    None => (parse(&body), parse(&body)),
                }
            }
            Some('?') => {
                *i += 1;
                (0, 1)
            }
            Some('*') => {
                *i += 1;
                (0, 8)
            }
            Some('+') => {
                *i += 1;
                (1, 8)
            }
            _ => (1, 1),
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// A `Vec` of strategies generates a `Vec` of values, element-wise.
    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            self.iter().map(|s| s.generate(rng)).collect()
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical strategy, reachable through [`any`].
    pub trait Arbitrary: Sized {
        type Strategy: Strategy<Value = Self>;
        fn arbitrary() -> Self::Strategy;
    }

    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    /// Canonical strategy for `bool` (also `prop::bool::ANY`).
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;
        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                type Strategy = std::ops::RangeInclusive<$t>;
                fn arbitrary() -> Self::Strategy {
                    <$t>::MIN..=<$t>::MAX
                }
            }
        )*};
    }

    impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);
}

pub mod bool {
    pub use crate::arbitrary::AnyBool as Any;

    /// `prop::bool::ANY` — uniform over `true` / `false`.
    pub const ANY: Any = Any;
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Sizes accepted by [`vec()`]: a fixed count, `lo..hi`, or `lo..=hi`.
    pub trait IntoSizeRange {
        /// Inclusive `(min, max)` bounds.
        fn size_bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn size_bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn size_bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn size_bounds(&self) -> (usize, usize) {
            assert!(self.start() <= self.end(), "empty vec size range");
            (*self.start(), *self.end())
        }
    }

    /// Strategy producing vectors of values from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.size_bounds();
        VecStrategy { element, min, max }
    }

    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.min == self.max {
                self.min
            } else {
                self.min + rng.below((self.max - self.min + 1) as u64) as usize
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop` module alias exposed by upstream's prelude.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Define property tests: each `name in strategy` argument is generated
/// afresh for every case, then the body runs. No shrinking on failure.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for _case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                $body
            }
        }
    )*};
}

/// `assert!` under a proptest-compatible name (no shrinking, so a plain
/// panic is the failure path).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Choose between strategies; optional `weight =>` prefixes bias the
/// choice, mirroring upstream.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vec_sizes_hold() {
        let mut rng = crate::test_runner::TestRng::deterministic("ranges");
        for _ in 0..500 {
            let x = (-50i64..50).generate(&mut rng);
            assert!((-50..50).contains(&x));
            let v = prop::collection::vec(0usize..3, 1..4).generate(&mut rng);
            assert!((1..=3).contains(&v.len()));
            assert!(v.iter().all(|&e| e < 3));
        }
    }

    #[test]
    fn string_pattern_generates_matching_values() {
        let mut rng = crate::test_runner::TestRng::deterministic("pattern");
        for _ in 0..500 {
            let s = "[a-z]{1,6}".generate(&mut rng);
            assert!((1..=6).contains(&s.len()), "bad length: {s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "bad char: {s:?}");
        }
    }

    #[test]
    fn union_weights_bias_choice() {
        let mut rng = crate::test_runner::TestRng::deterministic("weights");
        let strat = prop_oneof![9 => Just(true), 1 => Just(false)];
        let hits = (0..1000).filter(|_| strat.generate(&mut rng)).count();
        assert!(hits > 700, "expected ~900 true draws, got {hits}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_round_trip(a in 0i64..10, flip in any::<bool>()) {
            prop_assert!((0..10).contains(&a));
            let _ = flip;
        }
    }
}
